//! The deterministic event core of the asynchronous medium.
//!
//! PR 5 replaces the synchronous `AirMedium` call chain with an
//! event-driven medium: every frame exchange is an *event* with a virtual
//! timestamp, and events fire in a total order that is a pure function of
//! the campaign seed — never of OS scheduling.  [`EventScheduler`] is the
//! ordered queue of pending events that makes this work: each link
//! registers as an *event source* with its own virtual-time lower bound,
//! and a source may fire only while it holds the global minimum
//! `(time, source)` stamp among the queued and still-possible events.
//! Sources that run on different OS threads therefore interleave in
//! exactly one order, and every fired event gets a deterministic sequence
//! number and a per-event RNG seed derived from it.
//!
//! The scheduler is *conservative* in the discrete-event-simulation sense: a
//! source's local clock never moves backwards, so once a source holds the
//! minimum stamp nothing can preempt it.  A source that is busy computing
//! (its fuzzer is mutating packets) simply holds the others at the
//! turnstile until it either fires or retires — wall-clock stalls never
//! reorder virtual time.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::rng::splitmix64;

/// Identifier of one event source registered on an [`EventScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u16);

/// What one admitted event carries: its global sequence number and the seed
/// every random decision made *while firing it* must derive from.
#[derive(Debug, Clone, Copy)]
pub struct EventTicket {
    /// Position of this event in the global firing order (0-based).
    pub seq: u64,
    /// Per-event RNG seed: `splitmix64` over the scheduler seed, the firing
    /// order and the source, so no two events share a stream and the stream
    /// does not depend on how many events *other* sources fired in between.
    pub seed: u64,
    /// Whether the event was admitted on the sole-source fast path (no
    /// turnstile state was touched, so [`EventScheduler::end_event`] has
    /// nothing to restore).
    fast: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SourceState {
    /// Computing: the source's next event fires no earlier than its local
    /// lower-bound time.
    Idle,
    /// Blocked at the turnstile wanting to fire at its lower-bound time.
    Waiting,
    /// Admitted: currently firing an event.  At most one source at a time.
    Firing,
    /// Finished: never fires again and never holds anyone back.
    Retired,
}

#[derive(Debug)]
struct Source {
    /// Lower bound on the virtual time of this source's next event.  Never
    /// decreases.
    time_micros: u64,
    state: SourceState,
}

#[derive(Debug)]
struct SchedulerState {
    sources: Vec<Source>,
}

impl SchedulerState {
    /// Whether `id` holds the minimum `(time, id)` stamp among sources that
    /// could still fire earlier, and no other source is mid-event.
    fn may_fire(&self, id: SourceId) -> bool {
        let me = &self.sources[id.0 as usize];
        self.sources.iter().enumerate().all(|(i, s)| {
            if i == id.0 as usize || s.state == SourceState::Retired {
                return true;
            }
            if s.state == SourceState::Firing {
                return false;
            }
            (s.time_micros, i) > (me.time_micros, id.0 as usize)
        })
    }
}

/// The turnstile serializing concurrent event sources into one
/// deterministic firing order.
///
/// With a single live source the scheduler is a formality: the fast path
/// admits the event with one atomic increment — no lock, no wake-up — so
/// single-initiator campaigns pay essentially nothing per exchange.  The
/// fast path is sound because sources must be registered *before*
/// concurrent driving begins (the campaign harness connects every link,
/// then spawns the initiator threads): while `active == 1`, the sole live
/// source is by construction the caller, and there is nobody to order
/// against or wake.
#[derive(Debug)]
pub struct EventScheduler {
    state: Mutex<SchedulerState>,
    turn: Condvar,
    seed: u64,
    /// Sources that have not retired.  Kept outside the mutex so the
    /// sole-source fast path is a single atomic load.
    active: AtomicUsize,
    /// Global firing counter; shared by both admission paths so per-event
    /// seeds are identical no matter which path admitted an event.
    fired: AtomicU64,
}

impl EventScheduler {
    /// Creates a scheduler whose per-event seeds derive from `seed`.
    pub fn new(seed: u64) -> Self {
        EventScheduler {
            state: Mutex::new(SchedulerState {
                sources: Vec::new(),
            }),
            turn: Condvar::new(),
            seed,
            active: AtomicUsize::new(0),
            fired: AtomicU64::new(0),
        }
    }

    /// Registers a new event source starting at the given virtual time.
    ///
    /// Registration must happen before concurrent driving begins: the
    /// sole-source fast path assumes the set of live sources only changes
    /// between events of the remaining source.
    pub fn register(&self, time_micros: u64) -> SourceId {
        // analyzer: allow(panic) — a poisoned scheduler lock means a driver
        // thread already panicked; propagating is the only sound move.  The
        // source-count cast is a structural capacity bound, not input data.
        let mut state = self.state.lock().expect("scheduler poisoned");
        let id = SourceId(u16::try_from(state.sources.len()).expect("too many event sources"));
        state.sources.push(Source {
            time_micros,
            state: SourceState::Idle,
        });
        self.active.fetch_add(1, Ordering::Release);
        id
    }

    /// Number of sources that have not retired.
    pub fn active_sources(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Total events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired.load(Ordering::Acquire)
    }

    fn ticket(&self, seq: u64, fast: bool) -> EventTicket {
        EventTicket {
            seq,
            seed: splitmix64(self.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            fast,
        }
    }

    /// Blocks until source `id` may fire an event at virtual time
    /// `time_micros`, then admits it.  The caller *must* pair this with
    /// [`EventScheduler::end_event`].
    ///
    /// # Panics
    /// Panics if the source is retired or `time_micros` is below the
    /// source's current lower bound (virtual time cannot run backwards).
    pub fn begin_event(&self, id: SourceId, time_micros: u64) -> EventTicket {
        if self.active.load(Ordering::Acquire) == 1 {
            // Sole live source — nothing to order against, nobody to wake.
            // Its stored lower bound may go stale, which is conservative: a
            // source registered later only ever waits *longer* on it, and
            // the bound refreshes on this source's next slow-path event.
            let seq = self.fired.fetch_add(1, Ordering::Relaxed);
            return self.ticket(seq, true);
        }
        // analyzer: allow(panic) — lock poisoning propagates a driver panic.
        let mut state = self.state.lock().expect("scheduler poisoned");
        {
            let me = &mut state.sources[id.0 as usize];
            assert!(
                me.state == SourceState::Idle,
                "source {id:?} is not idle (state {:?})",
                me.state
            );
            assert!(
                time_micros >= me.time_micros,
                "source {id:?} tried to fire at {time_micros} < lower bound {}",
                me.time_micros
            );
            me.time_micros = time_micros;
            me.state = SourceState::Waiting;
        }
        // Raising this source's lower bound may be exactly what another
        // waiter was blocked on — wake the turnstile before queueing up.
        self.turn.notify_all();
        while !state.may_fire(id) {
            // analyzer: allow(panic) — lock poisoning propagates a panic.
            state = self.turn.wait(state).expect("scheduler poisoned");
        }
        state.sources[id.0 as usize].state = SourceState::Firing;
        let seq = self.fired.fetch_add(1, Ordering::Relaxed);
        self.ticket(seq, false)
    }

    /// Completes the event `ticket` admitted for source `id`, raising the
    /// source's lower bound to `time_micros` (the virtual time the exchange
    /// ended at) and waking the turnstile.
    pub fn end_event(&self, id: SourceId, time_micros: u64, ticket: &EventTicket) {
        if ticket.fast {
            // Fast-path admission touched no turnstile state.
            return;
        }
        // analyzer: allow(panic) — lock poisoning propagates a driver panic.
        let mut state = self.state.lock().expect("scheduler poisoned");
        let me = &mut state.sources[id.0 as usize];
        debug_assert_eq!(me.state, SourceState::Firing);
        me.time_micros = me.time_micros.max(time_micros);
        me.state = SourceState::Idle;
        drop(state);
        self.turn.notify_all();
    }

    /// Retires a source: it never fires again and stops holding the other
    /// sources back.  Idempotent.
    pub fn retire(&self, id: SourceId) {
        // analyzer: allow(panic) — lock poisoning propagates a driver panic.
        let mut state = self.state.lock().expect("scheduler poisoned");
        let me = &mut state.sources[id.0 as usize];
        if me.state != SourceState::Retired {
            me.state = SourceState::Retired;
            self.active.fetch_sub(1, Ordering::Release);
        }
        drop(state);
        self.turn.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_source_never_blocks() {
        let sched = EventScheduler::new(1);
        let id = sched.register(0);
        for (i, t) in [0u64, 10, 25].into_iter().enumerate() {
            let ticket = sched.begin_event(id, t);
            sched.end_event(id, t + 5, &ticket);
            assert_eq!(ticket.seq, i as u64);
        }
        assert_eq!(sched.events_fired(), 3);
    }

    #[test]
    fn per_event_seeds_are_deterministic_and_distinct() {
        let run = || {
            let sched = EventScheduler::new(42);
            let id = sched.register(0);
            (0..4)
                .map(|i| {
                    let t = sched.begin_event(id, i * 10);
                    sched.end_event(id, i * 10 + 1, &t);
                    t.seed
                })
                .collect::<Vec<u64>>()
        };
        let a = run();
        assert_eq!(a, run());
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "event seeds must be distinct");
    }

    #[test]
    fn two_threads_interleave_by_virtual_time() {
        // Source 0 fires at times 0,2,4,...; source 1 at 1,3,5,...  The
        // admitted order must be by virtual time no matter how the OS
        // schedules the two threads.
        let sched = Arc::new(EventScheduler::new(7));
        let a = sched.register(0);
        let b = sched.register(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for (id, start) in [(a, 0u64), (b, 1u64)] {
                let sched = Arc::clone(&sched);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    for k in 0..50u64 {
                        let t = start + 2 * k;
                        let ticket = sched.begin_event(id, t);
                        order.lock().unwrap().push((ticket.seq, t));
                        sched.end_event(id, t + 1, &ticket);
                    }
                    sched.retire(id);
                });
            }
        });
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 100);
        for (seq, t) in order.iter() {
            assert_eq!(*seq, *t, "event at virtual time {t} fired as #{seq}");
        }
    }

    #[test]
    fn retiring_releases_waiters() {
        let sched = Arc::new(EventScheduler::new(9));
        let early = sched.register(0);
        let late = sched.register(100);
        assert_eq!(sched.active_sources(), 2);
        std::thread::scope(|scope| {
            let s = Arc::clone(&sched);
            // The late source can only fire once the early one retires.
            let waiter = scope.spawn(move || {
                let ticket = s.begin_event(late, 100);
                s.end_event(late, 101, &ticket);
                s.retire(late);
                ticket.seq
            });
            let ticket = sched.begin_event(early, 0);
            sched.end_event(early, 1, &ticket);
            assert_eq!(ticket.seq, 0);
            sched.retire(early);
            assert_eq!(waiter.join().unwrap(), 1);
        });
        assert_eq!(sched.active_sources(), 0);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn time_cannot_run_backwards() {
        let sched = EventScheduler::new(0);
        let id = sched.register(50);
        // A second source forces the slow path, where the bound is checked.
        let _other = sched.register(1_000_000);
        sched.begin_event(id, 10);
    }
}
