//! L2CAP channel, port and link identifiers.
//!
//! These are exactly the values the paper's *core field mutating* technique
//! (§III-D) manipulates: the Protocol/Service Multiplexer ([`Psm`], the "port"
//! of a Bluetooth service) and the channel identifiers ([`Cid`]) carried in
//! signalling payloads (SCID, DCID, ICID, controller ID — collectively "CIDP"
//! in the paper).  [`ConnectionHandle`] and [`Identifier`] are the
//! HCI-level link handle and the L2CAP signalling packet ID, both of which the
//! paper classifies as *dependent* fields that must not be mutated.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An L2CAP Channel Identifier.
///
/// CIDs name the local endpoint of a logical channel.  CID `0x0001` is the
/// fixed signalling channel on ACL-U links and is the only *fixed* field of
/// the L2CAP frame (paper Fig. 6); dynamically allocated channels live in
/// `0x0040..=0xFFFF`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cid(pub u16);

impl Cid {
    /// The null CID; never valid on the air.
    pub const NULL: Cid = Cid(0x0000);
    /// The fixed ACL-U signalling channel (`0x0001`).
    pub const SIGNALING: Cid = Cid(0x0001);
    /// The connectionless data channel (`0x0002`).
    pub const CONNECTIONLESS: Cid = Cid(0x0002);
    /// The AMP manager protocol channel (`0x0003`).
    pub const AMP_MANAGER: Cid = Cid(0x0003);
    /// The LE attribute protocol channel (`0x0004`).
    pub const ATTRIBUTE: Cid = Cid(0x0004);
    /// The LE signalling channel (`0x0005`).
    pub const LE_SIGNALING: Cid = Cid(0x0005);
    /// The security manager channel (`0x0006`).
    pub const SECURITY_MANAGER: Cid = Cid(0x0006);
    /// First dynamically allocatable CID on ACL-U links.
    pub const DYNAMIC_START: Cid = Cid(0x0040);
    /// Last dynamically allocatable CID.
    pub const DYNAMIC_END: Cid = Cid(0xFFFF);

    /// Returns the raw 16-bit value.
    pub const fn value(&self) -> u16 {
        self.0
    }

    /// Returns `true` if this is the fixed signalling channel.
    pub const fn is_signaling(&self) -> bool {
        self.0 == 0x0001
    }

    /// Returns `true` if the CID lies in the dynamically allocatable range
    /// `0x0040..=0xFFFF` — the range the paper's Table IV uses when mutating
    /// CIDP values.
    pub const fn is_dynamic(&self) -> bool {
        self.0 >= 0x0040
    }

    /// Returns `true` if the CID is one of the reserved fixed channels
    /// (`0x0001..=0x003F`, excluding the dynamic range).
    pub const fn is_fixed_channel(&self) -> bool {
        self.0 >= 0x0001 && self.0 <= 0x003F
    }
}

impl fmt::Display for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04X}", self.0)
    }
}

impl fmt::LowerHex for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u16> for Cid {
    fn from(v: u16) -> Self {
        Cid(v)
    }
}

impl From<Cid> for u16 {
    fn from(c: Cid) -> Self {
        c.0
    }
}

/// A Protocol/Service Multiplexer value — the "port number" of a Bluetooth
/// service reachable over L2CAP.
///
/// The Bluetooth specification requires valid PSMs to have an odd least
/// significant octet and an even most significant octet.  The paper's
/// Table IV mutates PSMs *outside* the assigned/valid space to probe how the
/// target parses abnormal port values.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Psm(pub u16);

impl Psm {
    /// Service Discovery Protocol (`0x0001`) — never requires pairing and is
    /// supported by every Bluetooth device; the fallback port of the paper's
    /// target-scanning phase.
    pub const SDP: Psm = Psm(0x0001);
    /// RFCOMM (`0x0003`).
    pub const RFCOMM: Psm = Psm(0x0003);
    /// Telephony Control Protocol (`0x0005`).
    pub const TCS_BIN: Psm = Psm(0x0005);
    /// TCS cordless (`0x0007`).
    pub const TCS_BIN_CORDLESS: Psm = Psm(0x0007);
    /// BNEP (`0x000F`).
    pub const BNEP: Psm = Psm(0x000F);
    /// HID control (`0x0011`).
    pub const HID_CONTROL: Psm = Psm(0x0011);
    /// HID interrupt (`0x0013`).
    pub const HID_INTERRUPT: Psm = Psm(0x0013);
    /// UPnP (`0x0015`).
    pub const UPNP: Psm = Psm(0x0015);
    /// AVCTP (`0x0017`).
    pub const AVCTP: Psm = Psm(0x0017);
    /// AVDTP (`0x0019`).
    pub const AVDTP: Psm = Psm(0x0019);
    /// AVCTP browsing (`0x001B`).
    pub const AVCTP_BROWSING: Psm = Psm(0x001B);
    /// ATT over BR/EDR (`0x001F`).
    pub const ATT: Psm = Psm(0x001F);
    /// 3DSP (`0x0021`).
    pub const THREE_DSP: Psm = Psm(0x0021);
    /// Internet Protocol Support Profile (`0x0023`).
    pub const IPSP: Psm = Psm(0x0023);
    /// Object Transfer Service (`0x0025`).
    pub const OTS: Psm = Psm(0x0025);
    /// Start of the dynamically assignable PSM range.
    pub const DYNAMIC_START: Psm = Psm(0x1001);

    /// Enhanced ATT over an LE credit-based channel (SPSM `0x0027`).
    pub const EATT: Psm = Psm(0x0027);
    /// Object Transfer Service over LE (SPSM `0x0025`; same value as
    /// [`Psm::OTS`], listed separately for the LE scan catalogue).
    pub const OTS_LE: Psm = Psm(0x0025);
    /// First dynamically assignable LE SPSM (`0x0080`).
    pub const LE_DYNAMIC_START: Psm = Psm(0x0080);
    /// Last defined LE SPSM value (`0x00FF`).
    pub const LE_DYNAMIC_END: Psm = Psm(0x00FF);

    /// Returns the raw 16-bit value.
    pub const fn value(&self) -> u16 {
        self.0
    }

    /// Returns `true` if the PSM satisfies the specification's structural
    /// validity rule: the least significant octet must be odd and the most
    /// significant octet must be even.
    pub const fn is_valid(&self) -> bool {
        let lsb = (self.0 & 0x00FF) as u8;
        let msb = (self.0 >> 8) as u8;
        lsb % 2 == 1 && msb.is_multiple_of(2)
    }

    /// Returns `true` if the PSM is in the dynamically assignable range
    /// (`0x1001..`), as opposed to the SIG-assigned fixed range.
    pub const fn is_dynamic(&self) -> bool {
        self.0 >= 0x1001
    }

    /// Returns the list of SIG-assigned PSMs this crate knows about.  Used by
    /// the simulated SDP service table and by port scanning.
    pub fn well_known() -> &'static [Psm] {
        &[
            Psm::SDP,
            Psm::RFCOMM,
            Psm::TCS_BIN,
            Psm::TCS_BIN_CORDLESS,
            Psm::BNEP,
            Psm::HID_CONTROL,
            Psm::HID_INTERRUPT,
            Psm::UPNP,
            Psm::AVCTP,
            Psm::AVDTP,
            Psm::AVCTP_BROWSING,
            Psm::ATT,
            Psm::THREE_DSP,
            Psm::IPSP,
            Psm::OTS,
        ]
    }

    /// Returns `true` if the value is a defined LE SPSM: SIG-assigned
    /// (`0x0001..=0x007F`) or dynamically assignable (`0x0080..=0x00FF`).
    pub const fn is_valid_spsm(&self) -> bool {
        self.0 >= 0x0001 && self.0 <= 0x00FF
    }

    /// Returns the list of LE SPSMs the target scanner probes on an LE-U
    /// link (the LE counterpart of [`Psm::well_known`]).
    pub fn well_known_le() -> &'static [Psm] {
        &[
            Psm::OTS_LE,
            Psm::EATT,
            Psm(0x0029), // 3D synchronization
            Psm::LE_DYNAMIC_START,
            Psm(0x0081),
            Psm(0x0082),
        ]
    }
}

impl fmt::Display for Psm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04X}", self.0)
    }
}

impl From<u16> for Psm {
    fn from(v: u16) -> Self {
        Psm(v)
    }
}

impl From<Psm> for u16 {
    fn from(p: Psm) -> Self {
        p.0
    }
}

/// An HCI ACL connection handle (12 significant bits).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ConnectionHandle(pub u16);

impl ConnectionHandle {
    /// Maximum valid connection handle value (`0x0EFF`).
    pub const MAX: ConnectionHandle = ConnectionHandle(0x0EFF);

    /// Returns the raw handle value.
    pub const fn value(&self) -> u16 {
        self.0
    }

    /// Returns `true` if the handle is within the controller's valid range.
    pub const fn is_valid(&self) -> bool {
        self.0 <= 0x0EFF
    }
}

impl fmt::Display for ConnectionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:03X}", self.0)
    }
}

impl From<u16> for ConnectionHandle {
    fn from(v: u16) -> Self {
        ConnectionHandle(v)
    }
}

/// The L2CAP signalling packet identifier — matches responses to requests.
///
/// The identifier is classified as a *dependent* field by the paper: it is
/// dynamically assigned by the sender and never mutated.  `0x00` is invalid
/// per the specification, so [`Identifier::next`] wraps from `0xFF` to
/// `0x01`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Identifier(pub u8);

impl Identifier {
    /// The first valid identifier.
    pub const FIRST: Identifier = Identifier(0x01);

    /// Returns the raw identifier value.
    pub const fn value(&self) -> u8 {
        self.0
    }

    /// Returns `true` if the identifier is valid (non-zero).
    pub const fn is_valid(&self) -> bool {
        self.0 != 0
    }

    /// Returns the next identifier in sequence, skipping the invalid `0x00`.
    pub const fn next(&self) -> Identifier {
        if self.0 == 0xFF {
            Identifier(0x01)
        } else {
            Identifier(self.0 + 1)
        }
    }
}

impl Default for Identifier {
    fn default() -> Self {
        Identifier::FIRST
    }
}

impl fmt::Display for Identifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02X}", self.0)
    }
}

impl From<u8> for Identifier {
    fn from(v: u8) -> Self {
        Identifier(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signaling_cid_is_fixed() {
        assert!(Cid::SIGNALING.is_signaling());
        assert!(Cid::SIGNALING.is_fixed_channel());
        assert!(!Cid::SIGNALING.is_dynamic());
    }

    #[test]
    fn dynamic_cid_range_matches_table4() {
        assert!(Cid(0x0040).is_dynamic());
        assert!(Cid(0xFFFF).is_dynamic());
        assert!(!Cid(0x003F).is_dynamic());
        assert!(!Cid::NULL.is_dynamic());
    }

    #[test]
    fn cid_display_is_hex() {
        assert_eq!(Cid(0x0040).to_string(), "0x0040");
        assert_eq!(format!("{:04x}", Cid(0xABCD)), "abcd");
        assert_eq!(format!("{:04X}", Cid(0xABCD)), "ABCD");
    }

    #[test]
    fn well_known_psms_are_structurally_valid() {
        for psm in Psm::well_known() {
            assert!(psm.is_valid(), "{psm} should be valid");
            assert!(!psm.is_dynamic());
        }
    }

    #[test]
    fn psm_validity_rule() {
        // Odd LSB, even MSB => valid.
        assert!(Psm(0x0001).is_valid());
        assert!(Psm(0x1001).is_valid());
        // Even LSB => invalid.
        assert!(!Psm(0x0100).is_valid());
        assert!(!Psm(0x0002).is_valid());
        // Odd MSB => invalid.
        assert!(!Psm(0x0101).is_valid());
    }

    #[test]
    fn sdp_is_the_fallback_port() {
        assert_eq!(Psm::SDP.value(), 0x0001);
    }

    #[test]
    fn connection_handle_range() {
        assert!(ConnectionHandle(0x0000).is_valid());
        assert!(ConnectionHandle(0x0EFF).is_valid());
        assert!(!ConnectionHandle(0x0F00).is_valid());
    }

    #[test]
    fn identifier_never_becomes_zero() {
        let mut id = Identifier::FIRST;
        for _ in 0..1000 {
            assert!(id.is_valid());
            id = id.next();
        }
    }

    #[test]
    fn identifier_wraps_to_one() {
        assert_eq!(Identifier(0xFF).next(), Identifier(0x01));
        assert_eq!(Identifier(0x01).next(), Identifier(0x02));
    }

    #[test]
    fn conversions() {
        assert_eq!(u16::from(Cid::from(0x40u16)), 0x40);
        assert_eq!(u16::from(Psm::from(0x1001u16)), 0x1001);
        assert_eq!(Identifier::from(7u8).value(), 7);
    }
}
