//! Shared frame buffers and the recycling arena behind the zero-copy packet
//! pipeline.
//!
//! Every layer crossing of the original pipeline copied payload bytes: the
//! codec re-owned payloads on parse, fragmentation copied each ACL chunk, and
//! every tap crossing cloned whole frames.  [`FrameBuf`] removes those copies:
//! it is a cheaply-cloneable, sliceable view into a reference-counted byte
//! buffer (a minimal, dependency-free equivalent of `bytes::Bytes`), so a
//! parsed payload, an ACL fragment and a tap record can all share the bytes of
//! the frame that produced them.
//!
//! [`FrameArena`] closes the loop on the transmit side: buffers checked out of
//! an arena, filled and frozen into [`FrameBuf`]s return to the arena's pool
//! automatically when the last clone is dropped, so a steady-state fuzzing
//! loop stops allocating fresh backing stores per packet.
//!
//! # Example
//!
//! ```
//! use btcore::{FrameArena, FrameBuf};
//!
//! let arena = FrameArena::new();
//! let mut buf = arena.checkout();
//! buf.extend_from_slice(&[0x0C, 0x00, 0x01, 0x00]);
//! let frame: FrameBuf = buf.freeze();
//! let header = frame.slice(..2);       // zero-copy view
//! assert_eq!(header, [0x0C, 0x00]);
//! drop((frame, header));               // last clone returns the buffer
//! assert_eq!(arena.pooled(), 1);
//! ```

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use serde::{DeError, Deserialize, Serialize, Value};

/// Upper bound on idle buffers one [`FrameArena`] keeps alive.
const MAX_POOLED_BUFFERS: usize = 64;

/// The arena's free list plus an (approximate) lock-free length mirror, so
/// the full-pool case — e.g. a long trace dropping thousands of retained
/// buffers at once — skips the mutex entirely.
struct Pool {
    list: Mutex<Vec<Vec<u8>>>,
    approx_len: AtomicUsize,
}

impl Pool {
    fn new() -> Pool {
        Pool {
            list: Mutex::new(Vec::new()),
            approx_len: AtomicUsize::new(0),
        }
    }
}

fn lock_pool(pool: &Pool) -> std::sync::MutexGuard<'_, Vec<Vec<u8>>> {
    pool.list.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The reference-counted backing store of one or more [`FrameBuf`] views.
struct Shared {
    data: Vec<u8>,
    /// The arena pool the backing store returns to when the last view drops;
    /// `None` for buffers not owned by any arena.  A strong handle: keeping
    /// the pool alive from its buffers costs nothing and makes the
    /// recycle-on-drop path two plain atomic ops instead of a weak upgrade.
    pool: Option<Arc<Pool>>,
}

impl Drop for Shared {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            if pool.approx_len.load(Ordering::Relaxed) >= MAX_POOLED_BUFFERS {
                // Full pool: let the backing store free without touching the
                // mutex (the mass-drop path when a whole trace goes away).
                return;
            }
            let mut data = std::mem::take(&mut self.data);
            data.clear();
            let mut guard = lock_pool(&pool);
            if guard.len() < MAX_POOLED_BUFFERS {
                guard.push(data);
                pool.approx_len.store(guard.len(), Ordering::Relaxed);
            }
        }
    }
}

/// A cheaply-cloneable, sliceable view into a shared byte buffer.
///
/// Cloning and [slicing](FrameBuf::slice) never copy the underlying bytes;
/// both operations only bump a reference count.  Equality, hashing through
/// [`Deref`], serialization and `Debug` all behave exactly like the byte
/// slice the view exposes, so a `FrameBuf` field is a drop-in replacement for
/// a `Vec<u8>` payload in any packet struct.
pub struct FrameBuf {
    shared: Arc<Shared>,
    start: usize,
    end: usize,
}

impl FrameBuf {
    /// An empty buffer (shares one static backing store; never allocates
    /// per call beyond the first).
    pub fn new() -> FrameBuf {
        static EMPTY: OnceLock<FrameBuf> = OnceLock::new();
        EMPTY.get_or_init(|| FrameBuf::from_vec(Vec::new())).clone()
    }

    /// Wraps an owned byte vector without copying it.
    pub fn from_vec(data: Vec<u8>) -> FrameBuf {
        let end = data.len();
        FrameBuf {
            shared: Arc::new(Shared { data, pool: None }),
            start: 0,
            end,
        }
    }

    /// Copies a byte slice into a fresh buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> FrameBuf {
        FrameBuf::from_vec(bytes.to_vec())
    }

    /// The bytes this view exposes.
    pub fn as_slice(&self) -> &[u8] {
        &self.shared.data[self.start..self.end]
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a zero-copy sub-view of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted, matching slice
    /// indexing semantics.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> FrameBuf {
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            start <= end && end <= len,
            "slice {start}..{end} out of bounds for FrameBuf of length {len}"
        );
        FrameBuf {
            shared: self.shared.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Returns `true` when `self` and `other` are views into the same backing
    /// store (regardless of range) — i.e. no bytes were copied between them.
    pub fn shares_storage_with(&self, other: &FrameBuf) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Returns a view widened by `n` bytes *before* this view's start, if the
    /// backing store has them: the zero-copy inverse of `slice(n..)`.
    ///
    /// The extra bytes are whatever precedes the view in its backing buffer —
    /// meaningful only when the caller knows how the buffer was built (e.g. a
    /// packet body sliced out of a frame recovering the frame's header).
    pub fn widen_front(&self, n: usize) -> Option<FrameBuf> {
        self.start.checked_sub(n).map(|start| FrameBuf {
            shared: self.shared.clone(),
            start,
            end: self.end,
        })
    }
}

impl Clone for FrameBuf {
    fn clone(&self) -> Self {
        FrameBuf {
            shared: self.shared.clone(),
            start: self.start,
            end: self.end,
        }
    }
}

impl Default for FrameBuf {
    fn default() -> Self {
        FrameBuf::new()
    }
}

impl Deref for FrameBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for FrameBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(data: Vec<u8>) -> Self {
        FrameBuf::from_vec(data)
    }
}

impl From<&[u8]> for FrameBuf {
    fn from(bytes: &[u8]) -> Self {
        FrameBuf::copy_from_slice(bytes)
    }
}

impl<const N: usize> From<[u8; N]> for FrameBuf {
    fn from(bytes: [u8; N]) -> Self {
        FrameBuf::copy_from_slice(&bytes)
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for FrameBuf {}

impl PartialEq<[u8]> for FrameBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for FrameBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for FrameBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<FrameBuf> for Vec<u8> {
    fn eq(&self, other: &FrameBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for FrameBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for FrameBuf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Serializes exactly like `Vec<u8>` (a JSON array of numbers), so swapping a
/// `Vec<u8>` field for a `FrameBuf` changes no serialized artifact.
impl Serialize for FrameBuf {
    fn to_value(&self) -> Value {
        Value::Array(
            self.as_slice()
                .iter()
                .map(|b| Value::U64(u64::from(*b)))
                .collect(),
        )
    }
}

impl Deserialize for FrameBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<u8>::from_value(v).map(FrameBuf::from_vec)
    }
}

/// A uniquely-owned, writable buffer checked out of a [`FrameArena`].
///
/// Dereferences to `Vec<u8>` for filling; [`FrameBufMut::freeze`] turns it
/// into an immutable shareable [`FrameBuf`] whose backing store returns to the
/// arena when the last clone drops.
pub struct FrameBufMut {
    data: Vec<u8>,
    pool: Option<Arc<Pool>>,
}

impl FrameBufMut {
    /// A writable buffer not owned by any arena (its backing store is simply
    /// dropped when the last view of the frozen buffer goes away).
    pub fn detached() -> FrameBufMut {
        FrameBufMut {
            data: Vec::new(),
            pool: None,
        }
    }

    /// Freezes the buffer into an immutable, shareable [`FrameBuf`].
    pub fn freeze(self) -> FrameBuf {
        let end = self.data.len();
        FrameBuf {
            shared: Arc::new(Shared {
                data: self.data,
                pool: self.pool,
            }),
            start: 0,
            end,
        }
    }
}

impl Deref for FrameBufMut {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.data
    }
}

impl DerefMut for FrameBufMut {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }
}

impl fmt::Debug for FrameBufMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.data.as_slice(), f)
    }
}

/// A recycling pool of frame buffers for one link's transmit hot path.
///
/// Cloning an arena is cheap and yields a handle to the same pool, so a link,
/// its packet queue and its mutator can all check buffers out of (and return
/// them to) one shared free list.
#[derive(Clone)]
pub struct FrameArena {
    pool: Arc<Pool>,
}

impl FrameArena {
    /// Creates an empty arena.
    pub fn new() -> FrameArena {
        FrameArena {
            pool: Arc::new(Pool::new()),
        }
    }

    /// Checks a cleared, writable buffer out of the pool (allocating a fresh
    /// backing store only when the pool is empty).
    pub fn checkout(&self) -> FrameBufMut {
        let data = {
            let mut guard = lock_pool(&self.pool);
            let data = guard.pop();
            self.pool.approx_len.store(guard.len(), Ordering::Relaxed);
            data
        }
        .unwrap_or_default();
        FrameBufMut {
            data,
            pool: Some(self.pool.clone()),
        }
    }

    /// Number of idle buffers currently waiting in the pool.
    pub fn pooled(&self) -> usize {
        lock_pool(&self.pool).len()
    }
}

impl Default for FrameArena {
    fn default() -> Self {
        FrameArena::new()
    }
}

impl fmt::Debug for FrameArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameArena")
            .field("pooled", &self.pooled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_and_slices_share_storage() {
        let buf = FrameBuf::from_vec(vec![1, 2, 3, 4, 5]);
        let clone = buf.clone();
        let tail = buf.slice(2..);
        assert!(buf.shares_storage_with(&clone));
        assert!(buf.shares_storage_with(&tail));
        assert_eq!(tail, [3, 4, 5]);
        assert_eq!(tail.slice(1..2), [4]);
        assert_eq!(buf.len(), 5);
        assert!(!buf.is_empty());
    }

    #[test]
    fn equality_is_by_bytes_not_by_storage() {
        let a = FrameBuf::from_vec(vec![9, 9]);
        let b = FrameBuf::copy_from_slice(&[9, 9]);
        assert_eq!(a, b);
        assert!(!a.shares_storage_with(&b));
        assert_eq!(a, vec![9u8, 9]);
        assert_eq!(vec![9u8, 9], a);
        assert_eq!(a, [9u8, 9]);
    }

    #[test]
    fn empty_buffers_share_one_backing_store() {
        let a = FrameBuf::new();
        let b = FrameBuf::default();
        assert!(a.shares_storage_with(&b));
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        FrameBuf::from_vec(vec![1, 2]).slice(..3);
    }

    #[test]
    fn arena_recycles_backing_stores() {
        let arena = FrameArena::new();
        assert_eq!(arena.pooled(), 0);
        let mut buf = arena.checkout();
        buf.extend_from_slice(&[1, 2, 3]);
        let frozen = buf.freeze();
        let view = frozen.slice(1..);
        drop(frozen);
        // A live slice keeps the backing store out of the pool.
        assert_eq!(arena.pooled(), 0);
        drop(view);
        assert_eq!(arena.pooled(), 1);
        // The recycled buffer comes back cleared.
        let again = arena.checkout();
        assert!(again.is_empty());
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn detached_buffers_skip_the_pool() {
        let arena = FrameArena::new();
        let mut buf = FrameBufMut::detached();
        buf.push(7);
        drop(buf.freeze());
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn buffers_outlive_their_arena() {
        let arena = FrameArena::new();
        let mut buf = arena.checkout();
        buf.push(42);
        let frozen = buf.freeze();
        drop(arena);
        // The buffer keeps its pool alive; dropping it after the arena handle
        // is gone must not misbehave.
        assert_eq!(frozen, [42]);
        drop(frozen);
    }

    #[test]
    fn pool_size_is_bounded() {
        let arena = FrameArena::new();
        let frozen: Vec<FrameBuf> = (0..(MAX_POOLED_BUFFERS + 8))
            .map(|i| {
                let mut b = arena.checkout();
                b.push(i as u8);
                b.freeze()
            })
            .collect();
        drop(frozen);
        assert_eq!(arena.pooled(), MAX_POOLED_BUFFERS);
    }

    #[test]
    fn serializes_exactly_like_a_byte_vector() {
        let bytes = vec![0x0Cu8, 0x00, 0xFF];
        let buf = FrameBuf::from_vec(bytes.clone());
        assert_eq!(buf.to_value(), bytes.to_value());
        let back = FrameBuf::from_value(&buf.to_value()).unwrap();
        assert_eq!(back, buf);
    }

    #[test]
    fn debug_matches_slice_debug() {
        let buf = FrameBuf::from_vec(vec![1, 2]);
        assert_eq!(format!("{buf:?}"), "[1, 2]");
    }
}
