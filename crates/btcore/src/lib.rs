//! Shared Bluetooth vocabulary types for the L2Fuzz reproduction.
//!
//! This crate provides the small, dependency-free building blocks that every
//! other crate in the workspace uses:
//!
//! * [`BdAddr`], [`Oui`] — Bluetooth device addresses and vendor identifiers.
//! * [`Cid`], [`Psm`], [`ConnectionHandle`], [`Identifier`] — the L2CAP
//!   channel, port, link and signalling identifiers that the paper's *core
//!   field mutating* technique targets.
//! * [`codec`] — little-endian byte reader/writer used by every packet codec.
//! * [`FrameBuf`], [`FrameArena`] — shared, sliceable frame buffers and their
//!   recycling arena, the backbone of the zero-copy packet pipeline.
//! * [`ConnectionError`] — the five connection-level error messages the
//!   paper's vulnerability-detection phase distinguishes (§III-E).
//! * [`SimClock`] — a deterministic virtual clock so "elapsed time" results
//!   (Table VI) are reproducible.
//! * [`FuzzRng`] — a seedable RNG wrapper so every fuzzing run is replayable.
//! * [`TargetOracle`] — the black-box observation interface (ping, crash-dump
//!   presence) the detector uses against a target device.
//!
//! # Example
//!
//! ```
//! use btcore::{BdAddr, Psm, Cid};
//!
//! let addr: BdAddr = "AA:BB:CC:11:22:33".parse().unwrap();
//! assert_eq!(addr.oui().to_string(), "AA:BB:CC");
//! assert!(Psm::SDP.is_valid());
//! assert!(Cid::SIGNALING.is_signaling());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod clock;
pub mod codec;
pub mod device;
pub mod error;
pub mod event;
pub mod framebuf;
pub mod ids;
pub mod json;
pub mod oracle;
pub mod rng;

pub use addr::{BdAddr, Oui, ParseBdAddrError};
pub use clock::SimClock;
pub use codec::{ByteReader, ByteWriter, CodecError};
pub use device::{DeviceClass, DeviceMeta, LinkSlot, LinkType};
pub use error::{BtError, ConnectionError};
pub use event::{EventScheduler, EventTicket, SourceId};
pub use framebuf::{FrameArena, FrameBuf, FrameBufMut};
pub use ids::{Cid, ConnectionHandle, Identifier, Psm};
pub use oracle::{PingOutcome, TargetOracle};
pub use rng::{splitmix64, FuzzRng};
