//! Little-endian byte codec helpers.
//!
//! All Bluetooth host-stack multi-byte fields are transmitted little-endian,
//! so the packet codecs in the `l2cap` and `hci` crates are built on these
//! two small cursor types.  [`ByteReader`] is deliberately strict: every
//! short read is a [`CodecError`], never a panic, so malformed inputs surface
//! as values the fuzzing pipeline can reason about.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error produced when decoding a packet from raw bytes fails.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodecError {
    /// The input ended before the requested field could be read.
    UnexpectedEnd {
        /// Number of bytes requested.
        wanted: usize,
        /// Number of bytes that were available.
        available: usize,
    },
    /// A length field disagrees with the number of bytes actually present.
    LengthMismatch {
        /// Length announced by the packet.
        declared: usize,
        /// Length actually present.
        actual: usize,
    },
    /// A field carried a value that is not defined by the specification.
    InvalidValue {
        /// Name of the offending field.
        field: String,
        /// The raw value encountered.
        value: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { wanted, available } => {
                write!(
                    f,
                    "unexpected end of packet: wanted {wanted} bytes, {available} available"
                )
            }
            CodecError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "length field mismatch: declared {declared}, actual {actual}"
                )
            }
            CodecError::InvalidValue { field, value } => {
                write!(f, "invalid value {value:#X} for field {field}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A little-endian reading cursor over a byte slice.
///
/// # Example
///
/// ```
/// use btcore::ByteReader;
/// let mut r = ByteReader::new(&[0x01, 0x34, 0x12]);
/// assert_eq!(r.read_u8().unwrap(), 0x01);
/// assert_eq!(r.read_u16().unwrap(), 0x1234);
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd {
                wanted: n,
                available: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Returns [`CodecError::UnexpectedEnd`] if no bytes remain.
    pub fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than two bytes remain.
    pub fn read_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than four bytes remain.
    pub fn read_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads exactly `n` bytes and returns them as a slice borrowed from the
    /// input.
    ///
    /// # Errors
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Consumes and returns all remaining bytes.
    pub fn read_rest(&mut self) -> &'a [u8] {
        let rest = &self.data[self.pos..];
        self.pos = self.data.len();
        rest
    }

    /// Peeks at the next byte without consuming it, if any.
    pub fn peek_u8(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }
}

/// A growable little-endian byte writer.
///
/// # Example
///
/// ```
/// use btcore::ByteWriter;
/// let mut w = ByteWriter::new();
/// w.write_u8(0x02);
/// w.write_u16(0x0040);
/// assert_eq!(w.into_bytes(), vec![0x02, 0x40, 0x00]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing vector; written bytes are appended after its current
    /// contents.  Lets encoders write into reused (e.g. arena-checked-out)
    /// buffers instead of allocating a fresh one per packet.
    pub fn wrap(buf: Vec<u8>) -> Self {
        ByteWriter { buf }
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` in little-endian order.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Returns a view of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer and returns the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Renders a byte slice as space-separated upper-case hex, the format the
/// paper uses in its packet figures (e.g. `0C 00 01 00 ...`).
pub fn hex_dump(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02X}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_reads_little_endian() {
        let mut r = ByteReader::new(&[0x0C, 0x00, 0x01, 0x00, 0xAA]);
        assert_eq!(r.read_u16().unwrap(), 0x000C);
        assert_eq!(r.read_u16().unwrap(), 0x0001);
        assert_eq!(r.read_u8().unwrap(), 0xAA);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_reports_short_reads() {
        let mut r = ByteReader::new(&[0x01]);
        let err = r.read_u16().unwrap_err();
        assert_eq!(
            err,
            CodecError::UnexpectedEnd {
                wanted: 2,
                available: 1
            }
        );
    }

    #[test]
    fn reader_u32_and_rest() {
        let mut r = ByteReader::new(&[0x78, 0x56, 0x34, 0x12, 0xDE, 0xAD]);
        assert_eq!(r.read_u32().unwrap(), 0x12345678);
        assert_eq!(r.read_rest(), &[0xDE, 0xAD]);
        assert_eq!(r.read_rest(), &[] as &[u8]);
    }

    #[test]
    fn reader_peek_does_not_consume() {
        let mut r = ByteReader::new(&[0x42]);
        assert_eq!(r.peek_u8(), Some(0x42));
        assert_eq!(r.read_u8().unwrap(), 0x42);
        assert_eq!(r.peek_u8(), None);
    }

    #[test]
    fn writer_roundtrips_with_reader() {
        let mut w = ByteWriter::new();
        w.write_u8(0x04);
        w.write_u16(0x0008);
        w.write_u32(0xDEADBEEF);
        w.write_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0x04);
        assert_eq!(r.read_u16().unwrap(), 0x0008);
        assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bytes(3).unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn hex_dump_matches_paper_style() {
        assert_eq!(hex_dump(&[0x0C, 0x00, 0x8F, 0x7B]), "0C 00 8F 7B");
        assert_eq!(hex_dump(&[]), "");
    }

    #[test]
    fn error_display() {
        let e = CodecError::LengthMismatch {
            declared: 8,
            actual: 4,
        };
        assert!(e.to_string().contains("declared 8"));
        let e = CodecError::InvalidValue {
            field: "code".to_owned(),
            value: 0xFF,
        };
        assert!(e.to_string().contains("code"));
    }
}
