//! Bluetooth device addresses (`BD_ADDR`) and organizationally unique
//! identifiers (OUI).
//!
//! The paper's *target scanning* phase (§III-B) records each device's MAC
//! address and OUI before any fuzzing starts; these are the types that carry
//! that metadata through the rest of the pipeline.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 48-bit Bluetooth device address.
///
/// Stored big-endian (as printed), i.e. `bytes()[0]` is the most significant
/// byte and the first octet of the textual `AA:BB:CC:DD:EE:FF` form.
///
/// # Example
///
/// ```
/// use btcore::BdAddr;
/// let a: BdAddr = "00:1A:7D:DA:71:13".parse().unwrap();
/// assert_eq!(a.to_string(), "00:1A:7D:DA:71:13");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BdAddr([u8; 6]);

impl BdAddr {
    /// The all-zero address, used as a placeholder before discovery.
    pub const NULL: BdAddr = BdAddr([0; 6]);

    /// Creates an address from six big-endian bytes.
    pub const fn new(bytes: [u8; 6]) -> Self {
        BdAddr(bytes)
    }

    /// Returns the raw big-endian bytes of the address.
    pub const fn bytes(&self) -> [u8; 6] {
        self.0
    }

    /// Returns the vendor OUI (the three most significant octets).
    pub const fn oui(&self) -> Oui {
        Oui([self.0[0], self.0[1], self.0[2]])
    }

    /// Returns `true` if this is the all-zero placeholder address.
    pub fn is_null(&self) -> bool {
        self.0 == [0; 6]
    }
}

impl fmt::Display for BdAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02X}:{:02X}:{:02X}:{:02X}:{:02X}:{:02X}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error returned when parsing a [`BdAddr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBdAddrError {
    input: String,
}

impl fmt::Display for ParseBdAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bluetooth address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseBdAddrError {}

impl FromStr for BdAddr {
    type Err = ParseBdAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseBdAddrError {
            input: s.to_owned(),
        };
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(err());
        }
        let mut bytes = [0u8; 6];
        for (i, part) in parts.iter().enumerate() {
            if part.len() != 2 {
                return Err(err());
            }
            bytes[i] = u8::from_str_radix(part, 16).map_err(|_| err())?;
        }
        Ok(BdAddr(bytes))
    }
}

impl From<[u8; 6]> for BdAddr {
    fn from(bytes: [u8; 6]) -> Self {
        BdAddr(bytes)
    }
}

/// A 24-bit Organizationally Unique Identifier — the vendor prefix of a
/// [`BdAddr`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Oui([u8; 3]);

impl Oui {
    /// Creates an OUI from three big-endian bytes.
    pub const fn new(bytes: [u8; 3]) -> Self {
        Oui(bytes)
    }

    /// Returns the raw bytes of the OUI.
    pub const fn bytes(&self) -> [u8; 3] {
        self.0
    }
}

impl fmt::Display for Oui {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02X}:{:02X}:{:02X}", self.0[0], self.0[1], self.0[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let text = "AA:BB:CC:11:22:33";
        let addr: BdAddr = text.parse().unwrap();
        assert_eq!(addr.to_string(), text);
        assert_eq!(addr.bytes(), [0xAA, 0xBB, 0xCC, 0x11, 0x22, 0x33]);
    }

    #[test]
    fn parse_accepts_lowercase() {
        let addr: BdAddr = "aa:bb:cc:dd:ee:ff".parse().unwrap();
        assert_eq!(addr.bytes(), [0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF]);
    }

    #[test]
    fn parse_rejects_wrong_group_count() {
        assert!("AA:BB:CC:11:22".parse::<BdAddr>().is_err());
        assert!("AA:BB:CC:11:22:33:44".parse::<BdAddr>().is_err());
    }

    #[test]
    fn parse_rejects_bad_hex() {
        assert!("GG:BB:CC:11:22:33".parse::<BdAddr>().is_err());
        assert!("A:BB:CC:11:22:333".parse::<BdAddr>().is_err());
    }

    #[test]
    fn oui_is_top_three_octets() {
        let addr = BdAddr::new([0x00, 0x1A, 0x7D, 0xDA, 0x71, 0x13]);
        assert_eq!(addr.oui(), Oui::new([0x00, 0x1A, 0x7D]));
        assert_eq!(addr.oui().to_string(), "00:1A:7D");
    }

    #[test]
    fn null_address() {
        assert!(BdAddr::NULL.is_null());
        assert!(!BdAddr::new([1, 0, 0, 0, 0, 0]).is_null());
    }

    #[test]
    fn error_display_mentions_input() {
        let err = "nonsense".parse::<BdAddr>().unwrap_err();
        assert!(err.to_string().contains("nonsense"));
    }

    #[test]
    fn serde_roundtrip() {
        let addr = BdAddr::new([1, 2, 3, 4, 5, 6]);
        let json = serde_json::to_string(&addr).unwrap();
        let back: BdAddr = serde_json::from_str(&json).unwrap();
        assert_eq!(addr, back);
    }
}
