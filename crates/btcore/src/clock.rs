//! Deterministic virtual clock.
//!
//! The paper reports elapsed wall-clock time until the first vulnerability is
//! found on each device (Table VI).  Because our targets are simulated, we
//! use a virtual clock that components advance explicitly: every transmitted
//! packet, state transition and device-side processing step charges a small,
//! documented cost.  That keeps the Table VI reproduction deterministic and
//! independent of host speed, while preserving the *relative* shape of the
//! paper's timings (devices with more service ports and deeper application
//! logic take longer).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A shareable, monotonically increasing virtual clock with microsecond
/// resolution.
///
/// Cloning the clock yields a handle to the same underlying time source, so
/// the fuzzer, the air medium and the target device all observe a single
/// timeline.
///
/// # Example
///
/// ```
/// use btcore::SimClock;
/// use std::time::Duration;
///
/// let clock = SimClock::new();
/// let other = clock.clone();
/// clock.advance(Duration::from_millis(5));
/// assert_eq!(other.now(), Duration::from_millis(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        SimClock {
            micros: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Returns the current virtual time as a [`Duration`] since start.
    pub fn now(&self) -> Duration {
        Duration::from_micros(self.micros.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.micros
            .fetch_add(d.as_micros() as u64, Ordering::SeqCst);
    }

    /// Advances the clock by the given number of microseconds.
    pub fn advance_micros(&self, us: u64) {
        self.micros.fetch_add(us, Ordering::SeqCst);
    }

    /// Advances the clock *to* the given instant if it is ahead of the
    /// current time; a no-op otherwise.  The event-driven medium uses this
    /// to keep its timeline at the latest fired event when links run on
    /// their own local clocks.
    pub fn advance_to(&self, micros: u64) {
        self.micros.fetch_max(micros, Ordering::SeqCst);
    }

    /// Returns a timestamp in whole microseconds (handy for trace records).
    pub fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

/// Formats a duration the way the paper's Table VI prints elapsed times,
/// e.g. `1 m 32 s`, `40 s` or `2 h 40 m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperDuration(
    /// Total number of whole seconds.
    pub u64,
);

impl From<Duration> for PaperDuration {
    fn from(d: Duration) -> Self {
        PaperDuration(d.as_secs())
    }
}

impl fmt::Display for PaperDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0;
        let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);
        if h > 0 {
            write!(f, "{h} h {m} m")
        } else if m > 0 {
            write!(f, "{m} m {s} s")
        } else {
            write!(f, "{s} s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(3));
        c.advance_micros(500);
        assert_eq!(c.now_micros(), 3_500);
    }

    #[test]
    fn clones_share_the_timeline() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(1));
        b.advance(Duration::from_secs(2));
        assert_eq!(a.now(), Duration::from_secs(3));
        assert_eq!(b.now(), Duration::from_secs(3));
    }

    #[test]
    fn paper_duration_formats_like_table6() {
        assert_eq!(PaperDuration(92).to_string(), "1 m 32 s");
        assert_eq!(PaperDuration(40).to_string(), "40 s");
        assert_eq!(PaperDuration(2 * 3600 + 40 * 60).to_string(), "2 h 40 m");
        assert_eq!(
            PaperDuration::from(Duration::from_secs(85)).to_string(),
            "1 m 25 s"
        );
        assert_eq!(PaperDuration(7 * 60 + 11).to_string(), "7 m 11 s");
    }
}
