//! Seedable random number source for reproducible fuzzing runs.
//!
//! Every randomized decision in the workspace — mutation values, garbage
//! tails, baseline fuzzer behaviour, simulated processing jitter — draws from
//! a [`FuzzRng`], so a run is fully determined by its seed.  This is what
//! makes the experiment binaries in the `bench` crate reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 finalizer: cheap, well-distributed mixing for deriving
/// independent seeds from one base value.  Used by the campaign harness for
/// per-target seeds and per-tool RNG streams so no derived stream collides
/// with the raw seed.
pub fn splitmix64(input: u64) -> u64 {
    let mut z = input.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random number generator seeded from a single `u64`.
///
/// # Example
///
/// ```
/// use btcore::FuzzRng;
/// let mut a = FuzzRng::seed_from(42);
/// let mut b = FuzzRng::seed_from(42);
/// assert_eq!(a.next_u16(), b.next_u16());
/// ```
#[derive(Debug, Clone)]
pub struct FuzzRng {
    inner: StdRng,
    seed: u64,
}

impl FuzzRng {
    /// Creates a generator from the given seed.
    pub fn seed_from(seed: u64) -> Self {
        FuzzRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Returns the seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator; useful for giving each
    /// subsystem (mutator, air medium, device) its own stream while keeping
    /// the whole run a function of one top-level seed.
    pub fn fork(&mut self, label: u64) -> FuzzRng {
        let child_seed = self.inner.gen::<u64>() ^ label.rotate_left(17);
        FuzzRng::seed_from(child_seed)
    }

    /// Returns a uniformly random `u8`.
    pub fn next_u8(&mut self) -> u8 {
        self.inner.gen()
    }

    /// Returns a uniformly random `u16`.
    pub fn next_u16(&mut self) -> u16 {
        self.inner.gen()
    }

    /// Returns a uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.gen()
    }

    /// Returns a uniformly random value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_u16(&mut self, lo: u16, hi: u16) -> u16 {
        assert!(lo <= hi, "range_u16 requires lo <= hi");
        self.inner.gen_range(lo..=hi)
    }

    /// Returns a uniformly random `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "range_usize requires lo <= hi");
        self.inner.gen_range(lo..=hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick requires a non-empty slice");
        let idx = self.inner.gen_range(0..items.len());
        &items[idx]
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Returns a vector of `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FuzzRng::seed_from(7);
        let mut b = FuzzRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FuzzRng::seed_from(1);
        let mut b = FuzzRng::seed_from(2);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = FuzzRng::seed_from(99);
        let mut b = FuzzRng::seed_from(99);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u32(), fb.next_u32());
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut rng = FuzzRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.range_u16(0x0040, 0x0050);
            assert!((0x0040..=0x0050).contains(&v));
        }
        assert_eq!(rng.range_u16(5, 5), 5);
    }

    #[test]
    fn pick_returns_element_from_slice() {
        let mut rng = FuzzRng::seed_from(4);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = FuzzRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn bytes_len() {
        let mut rng = FuzzRng::seed_from(6);
        assert_eq!(rng.bytes(48).len(), 48);
        assert!(rng.bytes(0).is_empty());
    }
}
