//! Black-box observation interface over a target device.
//!
//! The paper's vulnerability-detection phase (§III-E) uses three observations
//! to decide whether a malformed packet hit a vulnerability:
//!
//! 1. whether the target answered with a connection-level error message,
//! 2. whether an L2CAP *ping* (echo request) still succeeds, and
//! 3. whether a crash dump (Android tombstone / Linux core dump) appeared on
//!    the device.
//!
//! Observation (1) is visible on the wire; (2) and (3) require asking the
//! target.  In the original work (3) is an out-of-band check (e.g. `adb`
//! pulling tombstones); in this reproduction the simulated device exposes the
//! same information through [`TargetOracle`].  The fuzzer only ever consumes
//! this trait, so swapping a real device back in later only requires a new
//! oracle implementation.

use serde::{Deserialize, Serialize};

use crate::error::ConnectionError;

/// Result of an L2CAP ping (echo request) issued by the detection phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PingOutcome {
    /// The target answered the echo request.
    Answered,
    /// The ping failed with the given connection error.
    Failed(ConnectionError),
}

impl PingOutcome {
    /// Returns `true` if the target responded to the ping.
    pub const fn is_answered(&self) -> bool {
        matches!(self, PingOutcome::Answered)
    }
}

/// Black-box view of a target device used by the vulnerability detector.
pub trait TargetOracle {
    /// Performs an L2CAP ping test against the target.
    fn ping(&mut self) -> PingOutcome;

    /// Returns `true` if the target produced a new crash dump since the last
    /// time this method was called (the check is consuming, mirroring "pull
    /// and clear tombstones").
    fn take_crash_dump(&mut self) -> bool;

    /// Returns `true` if the target's Bluetooth service is still running.
    fn bluetooth_alive(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeOracle {
        alive: bool,
        dumps: u32,
    }

    impl TargetOracle for FakeOracle {
        fn ping(&mut self) -> PingOutcome {
            if self.alive {
                PingOutcome::Answered
            } else {
                PingOutcome::Failed(ConnectionError::Failed)
            }
        }
        fn take_crash_dump(&mut self) -> bool {
            if self.dumps > 0 {
                self.dumps -= 1;
                true
            } else {
                false
            }
        }
        fn bluetooth_alive(&self) -> bool {
            self.alive
        }
    }

    #[test]
    fn oracle_is_object_safe_and_usable() {
        let mut oracle: Box<dyn TargetOracle> = Box::new(FakeOracle {
            alive: true,
            dumps: 1,
        });
        assert!(oracle.ping().is_answered());
        assert!(oracle.take_crash_dump());
        assert!(!oracle.take_crash_dump());
        assert!(oracle.bluetooth_alive());
    }

    #[test]
    fn ping_failure_carries_error() {
        let mut oracle = FakeOracle {
            alive: false,
            dumps: 0,
        };
        match oracle.ping() {
            PingOutcome::Failed(e) => assert!(e.indicates_dos()),
            PingOutcome::Answered => panic!("expected failure"),
        }
    }
}
