//! Streaming JSON serialization for the vocabulary types.
//!
//! These mirror the derived `serde::Serialize` encodings byte for byte (the
//! equivalence is pinned by the report-path tests in the `l2fuzz` crate), so
//! reports and traces can be written through
//! [`serde_json::JsonStreamWriter`] without materializing a `Value` tree —
//! and read back through [`serde_json::JsonStreamReader`] the same way.

use serde_json::{Error, JsonStreamReader, JsonStreamWriter, StreamDeserialize, StreamSerialize};

use crate::addr::{BdAddr, Oui};
use crate::device::{DeviceClass, DeviceMeta, LinkSlot, LinkType};
use crate::error::ConnectionError;
use crate::framebuf::FrameBuf;
use crate::ids::{Cid, ConnectionHandle, Identifier, Psm};

serde_json::stream_unit_enum!(DeviceClass, LinkType, ConnectionError);
serde_json::stream_unit_enum_de!(DeviceClass, LinkType, ConnectionError);

impl StreamSerialize for BdAddr {
    fn stream(&self, w: &mut JsonStreamWriter) {
        self.bytes().stream(w);
    }
}

impl StreamSerialize for Oui {
    fn stream(&self, w: &mut JsonStreamWriter) {
        self.bytes().stream(w);
    }
}

impl StreamSerialize for DeviceMeta {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("addr", &self.addr)
            .field("name", &self.name)
            .field("class", &self.class)
            .field("oui", &self.oui)
            .field("link_type", &self.link_type)
            .end_object();
    }
}

impl StreamSerialize for Cid {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.u64(u64::from(self.0));
    }
}

impl StreamSerialize for Psm {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.u64(u64::from(self.0));
    }
}

impl StreamSerialize for Identifier {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.u64(u64::from(self.0));
    }
}

impl StreamSerialize for ConnectionHandle {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.u64(u64::from(self.0));
    }
}

impl StreamSerialize for LinkSlot {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.u64(u64::from(self.0));
    }
}

/// Streams exactly like `Vec<u8>` (a JSON array of numbers), matching the
/// tree-based `Serialize` impl.
impl StreamSerialize for FrameBuf {
    fn stream(&self, w: &mut JsonStreamWriter) {
        self.as_slice().stream(w);
    }
}

impl StreamDeserialize for BdAddr {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        Ok(BdAddr::new(<[u8; 6]>::stream_from(r)?))
    }
}

impl StreamDeserialize for Oui {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        Ok(Oui::new(<[u8; 3]>::stream_from(r)?))
    }
}

impl StreamDeserialize for DeviceMeta {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.begin_object()?;
        let addr = r.key("addr")?.value()?;
        let name = r.key("name")?.value()?;
        let class = r.key("class")?.value()?;
        let oui = r.key("oui")?.value()?;
        let link_type = r.key("link_type")?.value()?;
        r.end_object()?;
        Ok(DeviceMeta {
            addr,
            name,
            class,
            oui,
            link_type,
        })
    }
}

impl StreamDeserialize for Cid {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        Ok(Cid(u16::stream_from(r)?))
    }
}

impl StreamDeserialize for Psm {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        Ok(Psm(u16::stream_from(r)?))
    }
}

impl StreamDeserialize for Identifier {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        Ok(Identifier(u8::stream_from(r)?))
    }
}

impl StreamDeserialize for ConnectionHandle {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        Ok(ConnectionHandle(u16::stream_from(r)?))
    }
}

impl StreamDeserialize for LinkSlot {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        Ok(LinkSlot(u16::stream_from(r)?))
    }
}

impl StreamDeserialize for FrameBuf {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        Ok(FrameBuf::from_vec(Vec::<u8>::stream_from(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::to_string_streamed;

    #[test]
    fn vocabulary_types_stream_like_their_derived_encodings() {
        let meta = DeviceMeta::new(
            BdAddr::new([0xF8, 0x0F, 0xF9, 1, 2, 3]),
            "Pixel 3",
            DeviceClass::Smartphone,
        )
        .with_link_type(LinkType::Le);
        assert_eq!(
            to_string_streamed(&meta),
            serde_json::to_string(&meta).unwrap()
        );
        let buf: FrameBuf = vec![1u8, 2, 250].into();
        assert_eq!(
            to_string_streamed(&buf),
            serde_json::to_string(&buf).unwrap()
        );
        for err in [
            ConnectionError::Failed,
            ConnectionError::Aborted,
            ConnectionError::Timeout,
        ] {
            assert_eq!(
                to_string_streamed(&err),
                serde_json::to_string(&err).unwrap()
            );
        }
        assert_eq!(to_string_streamed(&Psm::SDP), "1");
        assert_eq!(to_string_streamed(&Cid(0x40)), "64");
    }

    #[test]
    fn vocabulary_types_round_trip_through_the_streaming_reader() {
        let meta = DeviceMeta::new(
            BdAddr::new([0xF8, 0x0F, 0xF9, 1, 2, 3]),
            "Pixel 3",
            DeviceClass::Smartphone,
        )
        .with_link_type(LinkType::Le);
        let json = to_string_streamed(&meta);
        let back: DeviceMeta = serde_json::from_str_streamed(&json).unwrap();
        assert_eq!(back, meta);
        assert_eq!(to_string_streamed(&back), json);

        let buf: FrameBuf = vec![1u8, 2, 250].into();
        let back: FrameBuf = serde_json::from_str_streamed(&to_string_streamed(&buf)).unwrap();
        assert_eq!(back.as_slice(), buf.as_slice());

        let err: ConnectionError = serde_json::from_str_streamed("\"Timeout\"").unwrap();
        assert_eq!(err, ConnectionError::Timeout);
        assert!(serde_json::from_str_streamed::<ConnectionError>("\"Bogus\"").is_err());
    }
}
