//! Device metadata discovered during the target-scanning phase.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{BdAddr, Oui};

/// Major class of a Bluetooth device, as advertised in the Class-of-Device
/// field during inquiry.
///
/// The paper's test set (Table V) spans tablets, smartphones, earphones and
/// laptops; the class is recorded by the target-scanning phase along with the
/// address and OUI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Smartphone.
    Smartphone,
    /// Tablet computer.
    Tablet,
    /// Laptop or desktop computer.
    Computer,
    /// Audio device such as an earphone or headset.
    Audio,
    /// Wearable device.
    Wearable,
    /// Peripheral (keyboard, mouse, ...).
    Peripheral,
    /// Anything else.
    Other,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::Smartphone => "smartphone",
            DeviceClass::Tablet => "tablet",
            DeviceClass::Computer => "computer",
            DeviceClass::Audio => "audio",
            DeviceClass::Wearable => "wearable",
            DeviceClass::Peripheral => "peripheral",
            DeviceClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// The transport a target is reached over.
///
/// Bluetooth runs L2CAP over two very different links: the classic ACL-U
/// link of BR/EDR and the LE-U link of Bluetooth Low Energy.  The two share
/// the signalling code space but partition it — connection/configuration/
/// echo/AMP commands (`0x02–0x05`, `0x08–0x11`) are classic-only, the
/// connection-parameter-update and LE-credit-based commands (`0x12–0x15`)
/// are LE-only, and the enhanced credit-based commands (`0x17–0x1A`) plus
/// reject/disconnect/credit-indication work on both.  Every layer of the
/// pipeline (state table, endpoints, mutator, sniffer) consults this type to
/// pick the right side of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkType {
    /// Classic BR/EDR ACL-U link (the paper's Table V targets).
    BrEdr,
    /// Bluetooth Low Energy LE-U link.
    Le,
}

impl LinkType {
    /// Both link types.
    pub const ALL: [LinkType; 2] = [LinkType::BrEdr, LinkType::Le];

    /// Returns `true` for an LE-U link.
    pub const fn is_le(&self) -> bool {
        matches!(self, LinkType::Le)
    }
}

impl fmt::Display for LinkType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkType::BrEdr => "BR/EDR",
            LinkType::Le => "LE",
        };
        f.write_str(s)
    }
}

/// Index of one established link on a target device.
///
/// The event-driven medium lets several initiators hold independent links to
/// one device at the same time; the device keeps one isolated L2CAP acceptor
/// (own CID space, own channel state) per slot.  Slot numbers are assigned
/// per device in connection order, starting at [`LinkSlot::PRIMARY`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkSlot(pub u16);

impl LinkSlot {
    /// The first link established to a device — the only one that exists in
    /// single-initiator campaigns.
    pub const PRIMARY: LinkSlot = LinkSlot(0);
}

impl fmt::Display for LinkSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link#{}", self.0)
    }
}

/// Metadata about a discovered device, as gathered by target scanning
/// (§III-B): MAC address, friendly name, device class, vendor OUI and link
/// type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceMeta {
    /// The device's Bluetooth MAC address.
    pub addr: BdAddr,
    /// Friendly device name as reported during inquiry.
    pub name: String,
    /// Major device class.
    pub class: DeviceClass,
    /// Vendor OUI (derived from the address).
    pub oui: Oui,
    /// The transport the device is reached over.
    pub link_type: LinkType,
}

impl DeviceMeta {
    /// Creates metadata for a classic BR/EDR device; the OUI is derived from
    /// `addr`.
    pub fn new(addr: BdAddr, name: impl Into<String>, class: DeviceClass) -> Self {
        DeviceMeta {
            addr,
            name: name.into(),
            class,
            oui: addr.oui(),
            link_type: LinkType::BrEdr,
        }
    }

    /// Returns the same metadata with the link type replaced.
    pub fn with_link_type(mut self, link_type: LinkType) -> Self {
        self.link_type = link_type;
        self
    }
}

impl fmt::Display for DeviceMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] ({}, OUI {})",
            self.name, self.addr, self.class, self.oui
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_derives_oui_from_addr() {
        let addr = BdAddr::new([0xF8, 0x0F, 0xF9, 0x01, 0x02, 0x03]);
        let meta = DeviceMeta::new(addr, "Pixel 3", DeviceClass::Smartphone);
        assert_eq!(meta.oui, addr.oui());
        assert_eq!(meta.name, "Pixel 3");
    }

    #[test]
    fn display_contains_name_and_addr() {
        let addr = BdAddr::new([1, 2, 3, 4, 5, 6]);
        let meta = DeviceMeta::new(addr, "Buds+", DeviceClass::Audio);
        let s = meta.to_string();
        assert!(s.contains("Buds+"));
        assert!(s.contains("01:02:03:04:05:06"));
        assert!(s.contains("audio"));
    }

    #[test]
    fn class_display_all_variants() {
        let classes = [
            DeviceClass::Smartphone,
            DeviceClass::Tablet,
            DeviceClass::Computer,
            DeviceClass::Audio,
            DeviceClass::Wearable,
            DeviceClass::Peripheral,
            DeviceClass::Other,
        ];
        let names: Vec<String> = classes.iter().map(|c| c.to_string()).collect();
        assert_eq!(names.len(), 7);
        // All names distinct.
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 7);
    }
}
