//! Error taxonomy shared across the workspace.
//!
//! [`ConnectionError`] mirrors the five connection-level error messages the
//! paper's vulnerability-detection phase (§III-E) distinguishes when a test
//! packet disturbs the target: *Connection Failed*, *Aborted*, *Reset*,
//! *Refused* and *Timeout*.  The paper interprets *Connection Failed* as the
//! target's Bluetooth service having shut down (a denial of service) and the
//! remaining errors as symptoms of a crash.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::codec::CodecError;

/// Connection-level error observed while talking to a target device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConnectionError {
    /// The target's Bluetooth service is no longer reachable — the paper
    /// treats this as evidence of a denial of service.
    Failed,
    /// The connection was aborted by the target mid-exchange.
    Aborted,
    /// The connection was reset by the target.
    Reset,
    /// The target refused the connection attempt.
    Refused,
    /// The target stopped answering within the response window.
    Timeout,
}

impl ConnectionError {
    /// Returns `true` if the paper's detection logic classifies this error as
    /// a denial-of-service indicator (only *Connection Failed*).
    pub const fn indicates_dos(&self) -> bool {
        matches!(self, ConnectionError::Failed)
    }

    /// Returns `true` if the error indicates a probable crash of the target
    /// device (every error other than *Connection Failed*).
    pub const fn indicates_crash(&self) -> bool {
        !self.indicates_dos()
    }

    /// All five error kinds, in the order the paper lists them.
    pub const ALL: [ConnectionError; 5] = [
        ConnectionError::Failed,
        ConnectionError::Aborted,
        ConnectionError::Reset,
        ConnectionError::Refused,
        ConnectionError::Timeout,
    ];
}

impl fmt::Display for ConnectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConnectionError::Failed => "connection failed",
            ConnectionError::Aborted => "connection aborted",
            ConnectionError::Reset => "connection reset",
            ConnectionError::Refused => "connection refused",
            ConnectionError::Timeout => "timeout",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ConnectionError {}

/// Top-level error type for operations against a (virtual) Bluetooth device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BtError {
    /// A connection-level failure.
    Connection(ConnectionError),
    /// A packet could not be encoded or decoded.
    Codec(CodecError),
    /// The requested device is unknown to the air medium.
    UnknownDevice {
        /// Textual form of the address that was looked up.
        addr: String,
    },
    /// The target rejected the operation; carries the human-readable reason.
    Rejected {
        /// Reason string reported by the target (e.g. "command not understood").
        reason: String,
    },
    /// The local side is not connected to the target.
    NotConnected,
    /// The operation is not supported in the current state.
    InvalidState {
        /// Description of what was attempted.
        what: String,
    },
}

impl fmt::Display for BtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtError::Connection(e) => write!(f, "connection error: {e}"),
            BtError::Codec(e) => write!(f, "codec error: {e}"),
            BtError::UnknownDevice { addr } => write!(f, "unknown device {addr}"),
            BtError::Rejected { reason } => write!(f, "rejected by target: {reason}"),
            BtError::NotConnected => write!(f, "not connected to target"),
            BtError::InvalidState { what } => write!(f, "invalid state for operation: {what}"),
        }
    }
}

impl std::error::Error for BtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BtError::Connection(e) => Some(e),
            BtError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConnectionError> for BtError {
    fn from(e: ConnectionError) -> Self {
        BtError::Connection(e)
    }
}

impl From<CodecError> for BtError {
    fn from(e: CodecError) -> Self {
        BtError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_failed_indicates_dos() {
        assert!(ConnectionError::Failed.indicates_dos());
        for e in [
            ConnectionError::Aborted,
            ConnectionError::Reset,
            ConnectionError::Refused,
            ConnectionError::Timeout,
        ] {
            assert!(!e.indicates_dos(), "{e} must not indicate DoS");
            assert!(e.indicates_crash(), "{e} must indicate crash");
        }
    }

    #[test]
    fn all_lists_five_errors() {
        assert_eq!(ConnectionError::ALL.len(), 5);
    }

    #[test]
    fn display_is_lowercase_without_punctuation() {
        for e in ConnectionError::ALL {
            let s = e.to_string();
            assert_eq!(s, s.to_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn bterror_conversions_and_source() {
        use std::error::Error;
        let e: BtError = ConnectionError::Timeout.into();
        assert!(e.source().is_some());
        let e: BtError = CodecError::UnexpectedEnd {
            wanted: 2,
            available: 0,
        }
        .into();
        assert!(e.to_string().contains("codec"));
        let e = BtError::Rejected {
            reason: "invalid CID in request".into(),
        };
        assert!(e.to_string().contains("invalid CID"));
    }
}
