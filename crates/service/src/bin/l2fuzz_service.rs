//! `l2fuzz-service` — operate a checkpointable, resumable fuzzing sweep.
//!
//! ```text
//! l2fuzz-service --targets D2,D5 --seeds 8 [options]
//! ```
//!
//! The sweep is the cross product of `--targets` and the seed list, cut
//! into shards.  With `--checkpoint`, the service rewrites the checkpoint
//! file atomically after every committed shard; re-running the same command
//! resumes from the last committed shard and (by default) re-proves the
//! last shard's digest before continuing.  Kill it at any point — SIGKILL
//! included — and the next invocation picks up where the commits stopped.

use std::path::PathBuf;
use std::process::ExitCode;
use std::str::FromStr;

use btstack::ProfileId;
use service::{ResumeVerify, SweepService, SweepSpec};

struct Args {
    name: String,
    targets: Vec<ProfileId>,
    seed_count: usize,
    seed_base: u64,
    budget: Option<u64>,
    shard_size: usize,
    workers: usize,
    checkpoint: Option<PathBuf>,
    report: Option<PathBuf>,
    verify: ResumeVerify,
    max_shards: Option<usize>,
    max_job_failures: Option<usize>,
    watchdog_secs: Option<u64>,
    quiet: bool,
}

const USAGE: &str = "l2fuzz-service --targets D2,D5 --seeds 8 [options]\n\
     \n\
     Runs (or resumes) a sharded fuzzing sweep over targets x seeds.\n\
     \n\
     --targets LIST     comma-separated device profiles (D1..D11), required\n\
     --seeds N          number of derived campaign seeds per target, required\n\
     --seed-base HEX    base for seed derivation (default 1337)\n\
     --name NAME        sweep name recorded in checkpoints (default `sweep`)\n\
     --budget N         per-job packet budget (default: detection stopping rule)\n\
     --shard-size N     jobs per checkpoint commit (default 4)\n\
     --workers N        worker threads (default 2)\n\
     --checkpoint PATH  checkpoint file; enables resume across invocations\n\
     --report PATH      write the final report JSON to PATH when complete\n\
     --verify MODE      resume verification: none | last | all (default last)\n\
     --max-shards N     commit at most N shards this run, then exit 0\n\
     --max-job-failures N  stop once more than N jobs are quarantined\n\
     --watchdog SECS    quarantine jobs running past SECS of virtual time\n\
     --quiet            suppress per-shard progress lines";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        name: "sweep".to_owned(),
        targets: Vec::new(),
        seed_count: 0,
        seed_base: 1337,
        budget: None,
        shard_size: 4,
        workers: 2,
        checkpoint: None,
        report: None,
        verify: ResumeVerify::LastShard,
        max_shards: None,
        max_job_failures: None,
        watchdog_secs: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} requires a value"));
        match arg.as_str() {
            "--targets" => {
                args.targets = value("--targets")?
                    .split(',')
                    .map(ProfileId::from_str)
                    .collect::<Result<_, _>>()?;
            }
            "--seeds" => {
                args.seed_count = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--seed-base" => {
                let raw = value("--seed-base")?;
                args.seed_base = u64::from_str_radix(raw.trim_start_matches("0x"), 16)
                    .map_err(|e| format!("--seed-base: {e}"))?;
            }
            "--name" => args.name = value("--name")?,
            "--budget" => {
                args.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                );
            }
            "--shard-size" => {
                args.shard_size = value("--shard-size")?
                    .parse()
                    .map_err(|e| format!("--shard-size: {e}"))?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--report" => args.report = Some(PathBuf::from(value("--report")?)),
            "--verify" => {
                args.verify = match value("--verify")?.as_str() {
                    "none" => ResumeVerify::None,
                    "last" => ResumeVerify::LastShard,
                    "all" => ResumeVerify::All,
                    other => return Err(format!("--verify: unknown mode `{other}`")),
                };
            }
            "--max-shards" => {
                args.max_shards = Some(
                    value("--max-shards")?
                        .parse()
                        .map_err(|e| format!("--max-shards: {e}"))?,
                );
            }
            "--max-job-failures" => {
                args.max_job_failures = Some(
                    value("--max-job-failures")?
                        .parse()
                        .map_err(|e| format!("--max-job-failures: {e}"))?,
                );
            }
            "--watchdog" => {
                args.watchdog_secs = Some(
                    value("--watchdog")?
                        .parse()
                        .map_err(|e| format!("--watchdog: {e}"))?,
                );
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.targets.is_empty() {
        return Err("--targets is required".to_owned());
    }
    if args.seed_count == 0 {
        return Err("--seeds is required and must be positive".to_owned());
    }
    if args.shard_size == 0 {
        return Err("--shard-size must be positive".to_owned());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("l2fuzz-service: {err}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut spec = SweepSpec::new(
        args.name.clone(),
        args.targets.clone(),
        SweepSpec::derived_seeds(args.seed_base, args.seed_count),
    )
    .with_shard_size(args.shard_size);
    if let Some(budget) = args.budget {
        spec = spec.with_budget(budget);
    }
    if let Some(secs) = args.watchdog_secs {
        spec = spec.with_watchdog_secs(secs);
    }
    let total_shards = spec.shard_count();

    let mut svc = SweepService::new(spec)
        .workers(args.workers)
        .verify(args.verify);
    if let Some(path) = &args.checkpoint {
        svc = svc.checkpoint(path.clone());
    }
    if let Some(cap) = args.max_shards {
        svc = svc.max_shards(cap);
    }
    if let Some(limit) = args.max_job_failures {
        svc = svc.max_job_failures(limit);
    }
    if !args.quiet {
        svc = svc.on_commit(move |record| {
            eprintln!(
                "l2fuzz-service: committed shard {}/{} ({} job(s), digest {:016x})",
                record.shard + 1,
                total_shards,
                record.jobs.len(),
                record.digest
            );
        });
    }

    let outcome = match svc.run() {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("l2fuzz-service: {err}");
            return ExitCode::FAILURE;
        }
    };

    if outcome.resumed_from > 0 && !args.quiet {
        eprintln!(
            "l2fuzz-service: resumed from shard {} ({} shard(s) re-verified)",
            outcome.resumed_from,
            outcome.verified_shards.len()
        );
    }
    match &outcome.report {
        Some(report) => {
            println!("{}", report.summary_line());
            for cluster in report.corpus.clusters() {
                println!(
                    "  cluster {:016x}/{:08x}: {} job(s), vulns [{}] — {}",
                    cluster.key.crash_digest,
                    cluster.key.coverage_signature,
                    cluster.count(),
                    cluster.vuln_ids.join(", "),
                    cluster.description
                );
            }
            if let Some(path) = &args.report {
                if let Err(err) = std::fs::write(path, report.to_json() + "\n") {
                    eprintln!("l2fuzz-service: writing report: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            println!(
                "sweep `{}` paused: {}/{} shard(s) committed",
                outcome.checkpoint.spec.name,
                outcome.checkpoint.completed_shards(),
                total_shards
            );
        }
    }
    ExitCode::SUCCESS
}
