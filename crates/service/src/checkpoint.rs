//! Checkpoints: the sweep's durable state, streamed as JSON.
//!
//! After every committed shard the service rewrites the checkpoint file —
//! spec, per-shard records (with digests), and the corpus so far — through
//! [`serde_json::JsonStreamWriter`], atomically (write to a sibling temp
//! file, then rename).  A killed sweep reloads the file through
//! [`serde_json::JsonStreamReader`] and continues from the first
//! uncommitted shard; because campaigns are deterministic, re-running any
//! committed shard must reproduce its recorded digest, which is how a
//! resume is *verified* rather than trusted.

use std::path::Path;

use serde::{Deserialize, Serialize};
use serde_json::{Error, JsonStreamReader, JsonStreamWriter, StreamDeserialize, StreamSerialize};

use crate::corpus::{ClusterKey, CorpusStore};
use crate::digest::Fnv64;
use crate::spec::SweepSpec;
use crate::ServiceError;
use btstack::ProfileId;

/// How one job ended.
///
/// A failed or timed-out job is *quarantined*, not fatal: its summary (with
/// the failure reason) lands in the checkpoint like any other job's, the
/// shard commits, and the sweep moves on.  Because panics and watchdog
/// expiries derive from the virtual clock and the seeded streams, a
/// quarantined job reproduces its outcome on re-run — which is what keeps
/// resume verification meaningful for shards containing failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// The campaign ran to its normal end (vulnerable or not).
    Completed,
    /// The job's worker panicked or its campaign failed; see
    /// [`JobSummary::failure`].
    Failed,
    /// The job's per-link virtual-time watchdog expired.
    TimedOut,
}

serde_json::stream_unit_enum!(JobOutcome);
serde_json::stream_unit_enum_de!(JobOutcome);

impl JobOutcome {
    /// Stable tag for digesting (the enum's wire identity).
    fn digest_tag(self) -> u64 {
        match self {
            JobOutcome::Completed => 0,
            JobOutcome::Failed => 1,
            JobOutcome::TimedOut => 2,
        }
    }
}

/// What one finished job boiled down to.  Everything here derives from the
/// virtual clock and the seeded RNG streams — no wall-clock anywhere — so
/// two runs of the same job produce identical summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSummary {
    /// Sweep-wide job index (target-major).
    pub index: usize,
    /// The target profile.
    pub target: ProfileId,
    /// The campaign seed the job ran under.
    pub seed: u64,
    /// Whether the job surfaced a vulnerability — a detection finding in
    /// some initiator's report, or a crash dump on the target.
    pub vulnerable: bool,
    /// Number of findings in the job's report.
    pub findings: usize,
    /// Packets the job transmitted.
    pub packets_sent: u64,
    /// Virtual elapsed seconds.
    pub elapsed_secs: u64,
    /// FNV-1a digest of the job's compact streamed report.
    pub report_digest: u64,
    /// FNV-1a digest of the job's merged trace.
    pub trace_digest: u64,
    /// State-coverage bitmask of the job's merged trace
    /// ([`sniffer::StateCoverage::signature`]); zero for quarantined jobs.
    /// Feeds the corpus store's novelty ranking, and deliberately stays out
    /// of the shard digest so pre-existing checkpoints keep verifying.
    pub coverage_signature: u32,
    /// The corpus cluster this job joined, when it crashed the target.
    pub cluster: Option<ClusterKey>,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Why the job failed or timed out (`None` for completed jobs).
    pub failure: Option<String>,
}

impl StreamSerialize for JobSummary {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("index", &self.index)
            .field("target", &self.target)
            .field("seed", &self.seed)
            .field("vulnerable", &self.vulnerable)
            .field("findings", &self.findings)
            .field("packets_sent", &self.packets_sent)
            .field("elapsed_secs", &self.elapsed_secs)
            .field("report_digest", &self.report_digest)
            .field("trace_digest", &self.trace_digest)
            .field("coverage_signature", &self.coverage_signature)
            .field("cluster", &self.cluster)
            .field("outcome", &self.outcome)
            .field("failure", &self.failure)
            .end_object();
    }
}

impl StreamDeserialize for JobSummary {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.begin_object()?;
        let index = r.key("index")?.value()?;
        let target = r.key("target")?.value()?;
        let seed = r.key("seed")?.value()?;
        let vulnerable = r.key("vulnerable")?.value()?;
        let findings = r.key("findings")?.value()?;
        let packets_sent = r.key("packets_sent")?.value()?;
        let elapsed_secs = r.key("elapsed_secs")?.value()?;
        let report_digest = r.key("report_digest")?.value()?;
        let trace_digest = r.key("trace_digest")?.value()?;
        let coverage_signature = r.key("coverage_signature")?.value()?;
        let cluster = r.key("cluster")?.value()?;
        let outcome = r.key("outcome")?.value()?;
        let failure = r.key("failure")?.value()?;
        r.end_object()?;
        Ok(JobSummary {
            index,
            target,
            seed,
            vulnerable,
            findings,
            packets_sent,
            elapsed_secs,
            report_digest,
            trace_digest,
            coverage_signature,
            cluster,
            outcome,
            failure,
        })
    }
}

/// One committed shard: its jobs plus the digest that pins them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// Shard index (commits are contiguous from zero).
    pub shard: usize,
    /// Digest over the member jobs' report and trace digests, in job order.
    pub digest: u64,
    /// The member job summaries, ascending by index.
    pub jobs: Vec<JobSummary>,
}

impl ShardRecord {
    /// Computes the shard digest for a job list.  Quarantined jobs pin
    /// their outcome and failure reason instead of report/trace content, so
    /// a resume re-running the shard must reproduce the same failure.
    pub fn digest_jobs(jobs: &[JobSummary]) -> u64 {
        let mut h = Fnv64::new();
        for job in jobs {
            h.write_u64(job.report_digest);
            h.write_u64(job.trace_digest);
            h.write_u64(job.outcome.digest_tag());
            if let Some(failure) = &job.failure {
                h.write_str(failure);
            }
        }
        h.finish()
    }
}

impl StreamSerialize for ShardRecord {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("shard", &self.shard)
            .field("digest", &self.digest)
            .field("jobs", &self.jobs)
            .end_object();
    }
}

impl StreamDeserialize for ShardRecord {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.begin_object()?;
        let shard = r.key("shard")?.value()?;
        let digest = r.key("digest")?.value()?;
        let jobs = r.key("jobs")?.value()?;
        r.end_object()?;
        Ok(ShardRecord {
            shard,
            digest,
            jobs,
        })
    }
}

/// The sweep's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The sweep definition this checkpoint belongs to.
    pub spec: SweepSpec,
    /// [`SweepSpec::digest`] at creation — resume validates it.
    pub spec_digest: u64,
    /// Committed shards, contiguous from zero.
    pub shards: Vec<ShardRecord>,
    /// The corpus accumulated over the committed shards.
    pub corpus: CorpusStore,
}

impl Checkpoint {
    /// A fresh checkpoint with nothing committed.
    pub fn new(spec: SweepSpec) -> Self {
        let spec_digest = spec.digest();
        Checkpoint {
            spec,
            spec_digest,
            shards: Vec::new(),
            corpus: CorpusStore::new(),
        }
    }

    /// Number of committed shards (commits are contiguous, so this is also
    /// the first shard a resume runs).
    pub fn completed_shards(&self) -> usize {
        self.shards.len()
    }

    /// All committed job summaries, in job order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobSummary> {
        self.shards.iter().flat_map(|s| s.jobs.iter())
    }

    /// Number of committed jobs that did not complete (quarantined panics
    /// and watchdog timeouts) — what `--max-job-failures` meters.
    pub fn failed_jobs(&self) -> usize {
        self.jobs()
            .filter(|j| j.outcome != JobOutcome::Completed)
            .count()
    }

    /// Serializes the checkpoint (pretty, streamed).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty_streamed(self)
    }

    /// Parses a checkpoint back through the streaming reader.
    ///
    /// # Errors
    /// Returns a `serde_json::Error` on malformed input.
    pub fn from_json(json: &str) -> Result<Checkpoint, Error> {
        serde_json::from_str_streamed(json)
    }

    /// Atomically writes the checkpoint to `path`: the JSON lands in a
    /// sibling `*.tmp` file first and is renamed into place, so a kill
    /// mid-write leaves the previous checkpoint intact.
    ///
    /// # Errors
    /// Returns [`ServiceError::Io`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), ServiceError> {
        let tmp = path.with_extension("tmp");
        let io_err = |source| ServiceError::Io {
            path: path.display().to_string(),
            source,
        };
        std::fs::write(&tmp, self.to_json() + "\n").map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Loads a checkpoint from `path`.
    ///
    /// # Errors
    /// Returns [`ServiceError::Io`] on filesystem failures and
    /// [`ServiceError::Json`] on malformed content.
    pub fn load(path: &Path) -> Result<Checkpoint, ServiceError> {
        let json = std::fs::read_to_string(path).map_err(|source| ServiceError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Checkpoint::from_json(&json).map_err(|source| ServiceError::Json {
            path: path.display().to_string(),
            source,
        })
    }
}

impl StreamSerialize for Checkpoint {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("spec", &self.spec)
            .field("spec_digest", &self.spec_digest)
            .field("shards", &self.shards)
            .field("corpus", &self.corpus)
            .end_object();
    }
}

impl StreamDeserialize for Checkpoint {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.begin_object()?;
        let spec = r.key("spec")?.value()?;
        let spec_digest = r.key("spec_digest")?.value()?;
        let shards = r.key("shards")?.value()?;
        let corpus = r.key("corpus")?.value()?;
        r.end_object()?;
        Ok(Checkpoint {
            spec,
            spec_digest,
            shards,
            corpus,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let spec = SweepSpec::new("unit", [ProfileId::D2], [1, 2]).with_shard_size(2);
        let mut cp = Checkpoint::new(spec);
        let job = JobSummary {
            index: 0,
            target: ProfileId::D2,
            seed: 1,
            vulnerable: true,
            findings: 1,
            packets_sent: 42,
            elapsed_secs: 7,
            report_digest: 0xDEAD,
            trace_digest: 0xBEEF,
            coverage_signature: 3,
            cluster: Some(ClusterKey {
                crash_digest: 9,
                coverage_signature: 3,
            }),
            outcome: JobOutcome::Completed,
            failure: None,
        };
        let quarantined = JobSummary {
            index: 1,
            target: ProfileId::D2,
            seed: 2,
            vulnerable: false,
            findings: 0,
            packets_sent: 0,
            elapsed_secs: 0,
            report_digest: 0,
            trace_digest: 0,
            coverage_signature: 0,
            cluster: None,
            outcome: JobOutcome::TimedOut,
            failure: Some("watchdog expired".to_owned()),
        };
        cp.shards.push(ShardRecord {
            shard: 0,
            digest: ShardRecord::digest_jobs(&[job.clone(), quarantined.clone()]),
            jobs: vec![job, quarantined],
        });
        cp
    }

    #[test]
    fn checkpoint_round_trips_byte_identically() {
        let cp = sample();
        let json = cp.to_json();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn quarantined_jobs_pin_their_outcome_in_the_shard_digest() {
        let cp = sample();
        assert_eq!(cp.failed_jobs(), 1);
        let mut jobs = cp.shards[0].jobs.clone();
        let recorded = ShardRecord::digest_jobs(&jobs);
        jobs[1].outcome = JobOutcome::Failed;
        assert_ne!(recorded, ShardRecord::digest_jobs(&jobs));
        jobs[1].outcome = JobOutcome::TimedOut;
        jobs[1].failure = Some("different reason".to_owned());
        assert_ne!(recorded, ShardRecord::digest_jobs(&jobs));
    }

    #[test]
    fn save_is_atomic_and_reloadable() {
        let dir = std::env::temp_dir().join("l2fuzz-service-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let cp = sample();
        cp.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
