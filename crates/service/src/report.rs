//! The sweep's final report: every job summary plus the dedup corpus.
//!
//! The report is a pure function of the committed checkpoint state, so a
//! resumed sweep and an uninterrupted one produce **byte-identical** report
//! JSON — the property the kill/resume tests pin via [`ServiceReport::digest`].

use serde_json::{Error, JsonStreamReader, JsonStreamWriter, StreamDeserialize, StreamSerialize};

use crate::checkpoint::{Checkpoint, JobSummary};
use crate::corpus::CorpusStore;
use crate::digest::digest_bytes;
use crate::spec::SweepSpec;

/// Everything a finished sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// The sweep definition.
    pub spec: SweepSpec,
    /// One summary per job, in job order.
    pub jobs: Vec<JobSummary>,
    /// The crash-dedup corpus.
    pub corpus: CorpusStore,
}

impl ServiceReport {
    /// Builds the report from a fully committed checkpoint.
    ///
    /// # Panics
    /// Panics if the checkpoint is incomplete — callers must only build
    /// reports once every shard has committed.
    pub fn from_checkpoint(checkpoint: &Checkpoint) -> Self {
        assert_eq!(
            checkpoint.completed_shards(),
            checkpoint.spec.shard_count(),
            "report requested from an incomplete checkpoint"
        );
        ServiceReport {
            spec: checkpoint.spec.clone(),
            jobs: checkpoint.jobs().cloned().collect(),
            corpus: checkpoint.corpus.clone(),
        }
    }

    /// Number of jobs that found at least one vulnerability.
    pub fn vulnerable_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.vulnerable).count()
    }

    /// Number of quarantined jobs (failed or timed out).
    pub fn failed_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.outcome != crate::checkpoint::JobOutcome::Completed)
            .count()
    }

    /// Serializes the report (pretty, streamed).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty_streamed(self)
    }

    /// Parses a report back through the streaming reader.
    ///
    /// # Errors
    /// Returns a `serde_json::Error` on malformed input.
    pub fn from_json(json: &str) -> Result<ServiceReport, Error> {
        serde_json::from_str_streamed(json)
    }

    /// FNV-1a digest of the compact report JSON — the sweep's identity pin.
    pub fn digest(&self) -> u64 {
        digest_bytes(serde_json::to_string_streamed(self).as_bytes())
    }

    /// One-line operator summary.  Quarantined jobs are only mentioned when
    /// there are any, so healthy sweeps read exactly as before.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "sweep `{}`: {} jobs, {} vulnerable, {} crash cluster(s) from {} crashing job(s), digest {:016x}",
            self.spec.name,
            self.jobs.len(),
            self.vulnerable_jobs(),
            self.corpus.len(),
            self.corpus.member_count(),
            self.digest()
        );
        let failed = self.failed_jobs();
        if failed > 0 {
            line.push_str(&format!(" ({failed} quarantined)"));
        }
        line
    }
}

impl StreamSerialize for ServiceReport {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("spec", &self.spec)
            .field("jobs", &self.jobs)
            .field("corpus", &self.corpus)
            .end_object();
    }
}

impl StreamDeserialize for ServiceReport {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.begin_object()?;
        let spec = r.key("spec")?.value()?;
        let jobs = r.key("jobs")?.value()?;
        let corpus = r.key("corpus")?.value()?;
        r.end_object()?;
        Ok(ServiceReport { spec, jobs, corpus })
    }
}
