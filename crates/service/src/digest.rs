//! FNV-1a digests over campaign artifacts.
//!
//! Everything the checkpoint pins — a shard's committed result, a job's
//! report and trace, a crash dump's identity — is reduced to a 64-bit FNV-1a
//! digest.  The choice is deliberate: campaigns are bit-for-bit
//! deterministic, so equality of cheap non-cryptographic digests is exactly
//! as strong as equality of the artifacts themselves, and a resume
//! verification only needs to detect divergence, not adversaries.

use btstack::crashdump::CrashDump;
use hci::link::Direction;
use sniffer::Trace;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_BASIS }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }

    /// Feeds a `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    /// Feeds a string's bytes followed by an out-of-band terminator, so
    /// adjacent fields cannot alias (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xFF]);
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Digest of raw bytes in one call.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Digest of a packet trace: direction, timestamp and wire bytes of every
/// record, in capture order (the same recipe the replay-determinism tests
/// pin).
pub fn trace_digest(trace: &Trace) -> u64 {
    let mut h = Fnv64::new();
    for record in trace.records() {
        h.write_u8(match record.direction {
            Direction::Tx => 0,
            Direction::Rx => 1,
        });
        h.write_u64(record.timestamp_micros);
        h.write(&record.frame.to_bytes());
    }
    h.finish()
}

/// Digest of one crash dump's *identity*: what crashed and where, excluding
/// the virtual timestamp — two jobs tripping the same bug at different
/// virtual times must collide here, because this is the expensive half of
/// the corpus dedup key.
pub fn crash_dump_digest(dump: &CrashDump) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&format!("{:?}", dump.kind));
    h.write_str(&dump.process);
    h.write_u64(dump.signal.map(u64::from).unwrap_or(u64::MAX));
    h.write_u64(dump.fault_address.unwrap_or(u64::MAX));
    h.write_str(&dump.top_frame);
    h.write_str(&dump.vuln_id);
    h.finish()
}

/// Combined identity digest of a job's crash dumps: the **set** of distinct
/// per-dump identities, sorted.  An auto-restarted target trips the same
/// vulnerability a seed-dependent number of times, so the multiset (or the
/// order) of dumps would split one bug into per-seed clusters; the set
/// collapses them.
pub fn crash_dumps_digest(dumps: &[CrashDump]) -> u64 {
    let mut identities: Vec<u64> = dumps.iter().map(crash_dump_digest).collect();
    identities.sort_unstable();
    identities.dedup();
    let mut h = Fnv64::new();
    for identity in identities {
        h.write_u64(identity);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_framing_prevents_aliasing() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn crash_dump_digest_ignores_the_timestamp() {
        let early = CrashDump::bluedroid_tombstone("CVE-TEST", 100);
        let late = CrashDump::bluedroid_tombstone("CVE-TEST", 999_999);
        assert_eq!(crash_dump_digest(&early), crash_dump_digest(&late));
        let other = CrashDump::bluedroid_tombstone("CVE-OTHER", 100);
        assert_ne!(crash_dump_digest(&early), crash_dump_digest(&other));
    }

    #[test]
    fn crash_dumps_digest_is_over_the_identity_set() {
        let one = vec![CrashDump::bluedroid_tombstone("CVE-TEST", 100)];
        let three = vec![
            CrashDump::bluedroid_tombstone("CVE-TEST", 100),
            CrashDump::bluedroid_tombstone("CVE-TEST", 250),
            CrashDump::bluedroid_tombstone("CVE-TEST", 999),
        ];
        assert_eq!(crash_dumps_digest(&one), crash_dumps_digest(&three));
        let other = vec![CrashDump::bluedroid_tombstone("CVE-OTHER", 100)];
        assert_ne!(crash_dumps_digest(&one), crash_dumps_digest(&other));
    }

    #[test]
    fn empty_trace_digest_is_the_basis() {
        assert_eq!(trace_digest(&Trace::new()), FNV_BASIS);
        assert_eq!(digest_bytes(b""), FNV_BASIS);
    }
}
