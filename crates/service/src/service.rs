//! The sweep service: a worker pool draining the shard queue, with
//! in-order checkpoint commits and verifiable resume.
//!
//! Workers claim shards from an atomic cursor and run them out of order;
//! the committer (the calling thread) commits results strictly in shard
//! order — corpus insertion, checkpoint rewrite, observer callback — so the
//! durable state after shard *k* is identical no matter how the pool
//! interleaved.  That in-order commit rule is what makes "resume from the
//! last completed shard" well-defined, and campaign determinism is what
//! makes it *verifiable*: re-running a committed shard must reproduce its
//! recorded digest bit for bit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use btstack::DeviceProfile;
use l2fuzz::campaign::{Campaign, CampaignBuilder, CampaignPlan, TargetOutcome};
use l2fuzz::fuzzer::Fuzzer;
use l2fuzz::session::L2FuzzTool;
use l2fuzz::{FuzzConfig, TxBudget, WatchdogExpired};
use sniffer::{StateCoverage, Trace};

use crate::checkpoint::{Checkpoint, JobOutcome, JobSummary, ShardRecord};
use crate::corpus::ClusterKey;
use crate::report::ServiceReport;
use crate::spec::{JobSpec, SweepSpec};
use crate::ServiceError;

/// How much of a loaded checkpoint to re-prove before continuing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumeVerify {
    /// Trust the checkpoint as written.
    None,
    /// Re-run the last committed shard and compare digests (the default:
    /// catches a torn or stale checkpoint at the cost of one shard).
    #[default]
    LastShard,
    /// Re-run every committed shard (full proof; linear in committed work).
    All,
}

/// A crashing job's corpus contribution, carried from the worker to the
/// committer alongside its summary.
struct CrashInfo {
    key: ClusterKey,
    vuln_ids: Vec<String>,
    description: String,
    trace: Trace,
}

/// One finished job: the durable summary plus the (transient) corpus data.
struct JobResult {
    summary: JobSummary,
    crash: Option<CrashInfo>,
}

/// A per-commit callback, invoked on the committing thread in shard order.
type CommitObserver = Box<dyn Fn(&ShardRecord)>;

/// A campaign-plan customization hook, applied while building the sweep's
/// plan — how chaos sweeps inject a [`l2fuzz::FaultPlan`] (and how the
/// resilience tests inject pathological fuzzers).  Must be deterministic:
/// the same builder in must yield the same plan out, or resume verification
/// will rightly reject the checkpoint.
type PlanHook = Box<dyn Fn(CampaignBuilder) -> CampaignBuilder + Send + Sync>;

/// A commit-queue slot: empty until its shard's worker finishes.  Job-level
/// failures never occupy an `Err` here — they are quarantined into their
/// summaries — so a slot always carries the shard's full job list.
type ShardSlot = Option<Vec<JobResult>>;

/// What a finished (or deliberately stopped) run produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The final report — `Some` only when every shard has committed.
    pub report: Option<ServiceReport>,
    /// The checkpoint state at exit.
    pub checkpoint: Checkpoint,
    /// The first shard this run executed (0 for a fresh sweep).
    pub resumed_from: usize,
    /// Shards re-run and digest-matched during resume verification.
    pub verified_shards: Vec<usize>,
    /// Shards committed by this run.
    pub committed_this_run: usize,
}

impl SweepOutcome {
    /// `true` when the sweep ran to completion.
    pub fn is_complete(&self) -> bool {
        self.report.is_some()
    }
}

/// The long-running campaign service.
///
/// ```no_run
/// use btstack::ProfileId;
/// use service::{SweepService, SweepSpec};
///
/// let spec = SweepSpec::new("nightly", [ProfileId::D2], SweepSpec::derived_seeds(7, 16))
///     .with_budget(300)
///     .with_shard_size(4);
/// let outcome = SweepService::new(spec)
///     .workers(4)
///     .checkpoint("nightly.ckpt.json")
///     .run()
///     .unwrap();
/// println!("{}", outcome.report.unwrap().summary_line());
/// ```
pub struct SweepService {
    spec: SweepSpec,
    workers: usize,
    checkpoint_path: Option<PathBuf>,
    verify: ResumeVerify,
    max_shards: Option<usize>,
    max_job_failures: Option<usize>,
    on_commit: Option<CommitObserver>,
    customize: Option<PlanHook>,
}

impl SweepService {
    /// Creates a single-worker service with no checkpointing.
    pub fn new(spec: SweepSpec) -> Self {
        SweepService {
            spec,
            workers: 1,
            checkpoint_path: None,
            verify: ResumeVerify::default(),
            max_shards: None,
            max_job_failures: None,
            on_commit: None,
            customize: None,
        }
    }

    /// Sets the worker-pool size (clamped to at least one).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables checkpointing to `path`: the file is rewritten atomically
    /// after every committed shard, and an existing file is resumed from.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Sets the resume-verification policy (default:
    /// [`ResumeVerify::LastShard`]).
    pub fn verify(mut self, verify: ResumeVerify) -> Self {
        self.verify = verify;
        self
    }

    /// Commits at most `shards` shards in this run, then returns — the
    /// controlled stand-in for a kill, used by the resume tests and the
    /// CLI's `--max-shards`.
    pub fn max_shards(mut self, shards: usize) -> Self {
        self.max_shards = Some(shards);
        self
    }

    /// Installs a per-commit observer, called on the committing thread in
    /// shard order (progress reporting, metrics export).
    pub fn on_commit(mut self, f: impl Fn(&ShardRecord) + 'static) -> Self {
        self.on_commit = Some(Box::new(f));
        self
    }

    /// Stops the sweep (after committing the crossing shard) once more than
    /// `limit` jobs have been quarantined as failed or timed out.  The
    /// count is cumulative across resumes — it meters the checkpoint, not
    /// this run.  Default: unlimited (quarantine never aborts).
    pub fn max_job_failures(mut self, limit: usize) -> Self {
        self.max_job_failures = Some(limit);
        self
    }

    /// Installs a deterministic hook over the sweep's campaign builder —
    /// the seam for chaos sweeps ([`CampaignBuilder::faults`]) and custom
    /// fuzzers.  Applied after the spec's own settings, so it can override
    /// them.
    pub fn customize(
        mut self,
        f: impl Fn(CampaignBuilder) -> CampaignBuilder + Send + Sync + 'static,
    ) -> Self {
        self.customize = Some(Box::new(f));
        self
    }

    /// Runs (or resumes) the sweep.
    ///
    /// # Errors
    /// - [`ServiceError::Campaign`] when a job's campaign cannot run;
    /// - [`ServiceError::Io`]/[`ServiceError::Json`] on checkpoint
    ///   filesystem or parse failures;
    /// - [`ServiceError::SpecMismatch`] when the checkpoint on disk belongs
    ///   to a different sweep definition;
    /// - [`ServiceError::VerifyFailed`] when a committed shard does not
    ///   reproduce its recorded digest.
    pub fn run(&self) -> Result<SweepOutcome, ServiceError> {
        let plan = build_plan(&self.spec, self.customize.as_deref())?;
        let mut checkpoint = self.load_or_create()?;
        let resumed_from = checkpoint.completed_shards();
        let verified_shards = self.verify_resume(&plan, &checkpoint)?;

        let total = self.spec.shard_count();
        let end = match self.max_shards {
            Some(cap) => total.min(resumed_from + cap),
            None => total,
        };
        let pending: Vec<usize> = (resumed_from..end).collect();
        let committed_this_run = self.drain(&plan, &mut checkpoint, &pending)?;

        let report = (checkpoint.completed_shards() == total)
            .then(|| ServiceReport::from_checkpoint(&checkpoint));
        Ok(SweepOutcome {
            report,
            checkpoint,
            resumed_from,
            verified_shards,
            committed_this_run,
        })
    }

    /// Loads the checkpoint when one exists (validating its spec identity),
    /// otherwise starts fresh.
    fn load_or_create(&self) -> Result<Checkpoint, ServiceError> {
        match &self.checkpoint_path {
            Some(path) if path.exists() => {
                let checkpoint = Checkpoint::load(path)?;
                let expected = self.spec.digest();
                if checkpoint.spec_digest != expected || checkpoint.spec != self.spec {
                    return Err(ServiceError::SpecMismatch {
                        expected,
                        found: checkpoint.spec_digest,
                    });
                }
                Ok(checkpoint)
            }
            _ => Ok(Checkpoint::new(self.spec.clone())),
        }
    }

    /// Re-runs committed shards per the verification policy and compares
    /// digests.
    fn verify_resume(
        &self,
        plan: &CampaignPlan,
        checkpoint: &Checkpoint,
    ) -> Result<Vec<usize>, ServiceError> {
        let committed = checkpoint.completed_shards();
        let shards: Vec<usize> = match self.verify {
            ResumeVerify::None => Vec::new(),
            ResumeVerify::LastShard => committed.checked_sub(1).into_iter().collect(),
            ResumeVerify::All => (0..committed).collect(),
        };
        for &shard in &shards {
            let results = run_shard(plan, &self.spec, shard);
            let summaries: Vec<JobSummary> = results.into_iter().map(|r| r.summary).collect();
            let found = ShardRecord::digest_jobs(&summaries);
            let expected = checkpoint.shards[shard].digest;
            if found != expected {
                return Err(ServiceError::VerifyFailed {
                    shard,
                    expected,
                    found,
                });
            }
        }
        Ok(shards)
    }

    /// Runs `pending` shards through the worker pool, committing in shard
    /// order; returns the number committed.
    fn drain(
        &self,
        plan: &CampaignPlan,
        checkpoint: &mut Checkpoint,
        pending: &[usize],
    ) -> Result<usize, ServiceError> {
        if pending.is_empty() {
            return Ok(0);
        }
        let workers = self.workers.min(pending.len());
        let next = AtomicUsize::new(0);
        let cancel = AtomicBool::new(false);
        // Slot `i` receives shard `pending[i]`'s result.  parking_lot's
        // vendored stub has no Condvar, so the commit queue pairs a std
        // mutex with a std condvar.
        let slots: Mutex<Vec<ShardSlot>> = Mutex::new((0..pending.len()).map(|_| None).collect());
        let ready = Condvar::new();

        let mut committed = 0usize;
        let mut failure: Option<ServiceError> = None;
        let spec = &self.spec;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if cancel.load(Ordering::SeqCst) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(&shard) = pending.get(i) else { break };
                    let result = run_shard(plan, spec, shard);
                    let mut guard = slots.lock().expect("slot mutex poisoned");
                    guard[i] = Some(result);
                    ready.notify_all();
                });
            }

            // The committer: workers claim slots in ascending order, so
            // slot `i` is guaranteed to fill unless an error at an earlier
            // slot stops the loop first — every wait below terminates.
            for (i, &shard) in pending.iter().enumerate() {
                let results = {
                    let mut guard = slots.lock().expect("slot mutex poisoned");
                    loop {
                        if let Some(results) = guard[i].take() {
                            break results;
                        }
                        guard = ready.wait(guard).expect("slot mutex poisoned");
                    }
                };
                match self.commit(checkpoint, shard, results) {
                    Ok(()) => committed += 1,
                    Err(err) => {
                        // Quarantine-threshold trips commit first, so a
                        // `TooManyFailures` stop still leaves the crossing
                        // shard durable; I/O errors stop before the commit.
                        if matches!(err, ServiceError::TooManyFailures { .. }) {
                            committed += 1;
                        }
                        cancel.store(true, Ordering::SeqCst);
                        failure = Some(err);
                        break;
                    }
                }
            }
        });
        match failure {
            Some(err) => Err(err),
            None => Ok(committed),
        }
    }

    /// Commits one shard: corpus insertion in job order, the shard record,
    /// the checkpoint rewrite, and the observer — then meters the
    /// quarantine threshold, so the crossing shard is durable before the
    /// sweep stops.
    fn commit(
        &self,
        checkpoint: &mut Checkpoint,
        shard: usize,
        results: Vec<JobResult>,
    ) -> Result<(), ServiceError> {
        let mut jobs = Vec::with_capacity(results.len());
        for result in results {
            if let Some(crash) = result.crash {
                checkpoint.corpus.insert(
                    result.summary.index,
                    result.summary.trace_digest,
                    crash.key,
                    crash.vuln_ids,
                    &crash.description,
                    &crash.trace,
                );
            }
            jobs.push(result.summary);
        }
        let record = ShardRecord {
            shard,
            digest: ShardRecord::digest_jobs(&jobs),
            jobs,
        };
        checkpoint.shards.push(record);
        if let Some(path) = &self.checkpoint_path {
            checkpoint.save(path)?;
        }
        if let (Some(observer), Some(record)) = (&self.on_commit, checkpoint.shards.last()) {
            observer(record);
        }
        if let Some(limit) = self.max_job_failures {
            let failed = checkpoint.failed_jobs();
            if failed > limit {
                return Err(ServiceError::TooManyFailures { limit, failed });
            }
        }
        Ok(())
    }
}

/// Builds the campaign plan a sweep runs its jobs against.  Detection mode
/// (no budget) keeps the campaign defaults: the fuzzer stops at the first
/// vulnerability and the out-of-band oracle turns the crash into a report
/// finding.  Budget mode switches to the comparison experiments' setup —
/// budget-driven fuzzer, auto-restarting devices so the whole budget burns
/// even across crashes (which also means crashes surface as crash dumps,
/// not findings).
fn build_plan(
    spec: &SweepSpec,
    customize: Option<&(dyn Fn(CampaignBuilder) -> CampaignBuilder + Send + Sync)>,
) -> Result<CampaignPlan, ServiceError> {
    let mut builder =
        Campaign::builder().targets(spec.targets.iter().map(|id| DeviceProfile::table5(*id)));
    if let Some(budget) = spec.budget_packets {
        builder = builder
            .fuzzer(|| Box::new(L2FuzzTool::new(FuzzConfig::budget_driven())) as Box<dyn Fuzzer>)
            .budget(TxBudget::packets(budget))
            .auto_restart(true);
    }
    if let Some(secs) = spec.watchdog_secs {
        builder = builder.watchdog(Duration::from_secs(secs));
    }
    if let Some(customize) = customize {
        builder = customize(builder);
    }
    builder.plan().map_err(ServiceError::Campaign)
}

/// Runs one shard's jobs serially, in job order.  Infallible: a job that
/// panics, times out or fails to connect is quarantined into its summary,
/// not bubbled up — one bad job never costs the shard.
fn run_shard(plan: &CampaignPlan, spec: &SweepSpec, shard: usize) -> Vec<JobResult> {
    spec.shard_jobs(shard)
        .map(|index| run_job(plan, spec.job(index)))
        .collect()
}

/// Runs one `(target, seed)` job and reduces its outcome to the durable
/// summary plus corpus data.  Worker panics are contained here: a watchdog
/// expiry becomes [`JobOutcome::TimedOut`], anything else
/// [`JobOutcome::Failed`] — in both cases with the reason recorded, and
/// reproducibly so (panics derive from the virtual clock and seeded
/// streams, which is what lets resume verification re-prove failed shards).
fn run_job(plan: &CampaignPlan, job: JobSpec) -> JobResult {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        plan.run_target_with_seed(job.target_index, job.seed)
    }));
    match run {
        Ok(Ok(outcome)) => summarize(job, &outcome),
        Ok(Err(err)) => quarantined(job, JobOutcome::Failed, format!("campaign failed: {err}")),
        Err(payload) => {
            if let Some(expired) = payload.downcast_ref::<WatchdogExpired>() {
                quarantined(job, JobOutcome::TimedOut, expired.to_string())
            } else if let Some(msg) = payload.downcast_ref::<&'static str>() {
                quarantined(job, JobOutcome::Failed, format!("worker panicked: {msg}"))
            } else if let Some(msg) = payload.downcast_ref::<String>() {
                quarantined(job, JobOutcome::Failed, format!("worker panicked: {msg}"))
            } else {
                quarantined(job, JobOutcome::Failed, "worker panicked".to_owned())
            }
        }
    }
}

/// The summary of a job that did not complete: no report, no trace, the
/// failure reason pinned into the digests via [`ShardRecord::digest_jobs`].
fn quarantined(job: JobSpec, outcome: JobOutcome, failure: String) -> JobResult {
    JobResult {
        summary: JobSummary {
            index: job.index,
            target: job.target,
            seed: job.seed,
            vulnerable: false,
            findings: 0,
            packets_sent: 0,
            elapsed_secs: 0,
            report_digest: 0,
            trace_digest: 0,
            coverage_signature: 0,
            cluster: None,
            outcome,
            failure: Some(failure),
        },
        crash: None,
    }
}

/// Reduces a campaign outcome to a [`JobResult`].  Only virtual-clock and
/// seed-derived data lands in the summary, so it is reproducible.
fn summarize(job: JobSpec, outcome: &TargetOutcome) -> JobResult {
    let trace = outcome.merged_trace();
    let report_digest =
        crate::digest::digest_bytes(serde_json::to_string_streamed(&outcome.report).as_bytes());
    let trace_digest = crate::digest::trace_digest(&trace);
    // Computed for every job, not just crashing ones: the summary carries it
    // so the corpus store can rank clusters by novelty across the sweep.
    let coverage = StateCoverage::from_trace_on(&trace, outcome.report.target.link_type);

    let dumps = outcome.device.lock().crash_dumps().to_vec();
    let crash = if dumps.is_empty() {
        None
    } else {
        let key = ClusterKey {
            crash_digest: crate::digest::crash_dumps_digest(&dumps),
            coverage_signature: coverage.signature(),
        };
        let description = outcome
            .reports()
            .flat_map(|r| r.findings.first())
            .map(|f| f.evidence.description.clone())
            .next()
            .or_else(|| {
                dumps
                    .first()
                    .map(|dump| format!("{} in {}", dump.kind, dump.process))
            })
            .unwrap_or_else(|| "crash without findings or dumps".to_owned());
        let vuln_ids = dumps.iter().map(|d| d.vuln_id.clone()).collect();
        Some(CrashInfo {
            key,
            vuln_ids,
            description,
            trace: trace.clone(),
        })
    };

    JobResult {
        summary: JobSummary {
            index: job.index,
            target: job.target,
            seed: job.seed,
            vulnerable: outcome.any_vulnerable() || crash.is_some(),
            findings: outcome.reports().map(|r| r.findings.len()).sum(),
            packets_sent: outcome.reports().map(|r| r.packets_sent).sum(),
            elapsed_secs: outcome.reports().map(|r| r.elapsed_secs).max().unwrap_or(0),
            report_digest,
            trace_digest,
            coverage_signature: coverage.signature(),
            cluster: crash.as_ref().map(|c| c.key),
            outcome: JobOutcome::Completed,
            failure: None,
        },
        crash,
    }
}
