//! Fleet-scale campaign service: checkpointable, resumable fuzzing sweeps.
//!
//! [`SweepService`] turns a [`SweepSpec`] — the cross product of device
//! profiles and campaign seeds, cut into shards — into a worker pool that
//! drains the job queue, commits results **in shard order**, and rewrites a
//! streamed-JSON [`Checkpoint`] after every commit.  Because campaigns are
//! bit-for-bit deterministic, a killed sweep does not merely *resume* from
//! the last committed shard: the resume is *verified* by re-running a
//! committed shard and comparing its digest ([`ResumeVerify`]).  Finished
//! crashing jobs are clustered in a [`CorpusStore`] keyed by crash-dump
//! identity × state-coverage signature, so a thousand jobs tripping the
//! same seeded vulnerability collapse into one cluster with an exemplar
//! trace.
//!
//! The `l2fuzz-service` binary wraps all of this for operators; see the
//! repository README's "Operating a sweep" section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod corpus;
pub mod digest;
pub mod report;
pub mod service;
pub mod spec;

use std::fmt;

use l2fuzz::campaign::CampaignError;

pub use checkpoint::{Checkpoint, JobOutcome, JobSummary, ShardRecord};
pub use corpus::{ClusterKey, CorpusStore, CrashCluster};
pub use report::ServiceReport;
pub use service::{ResumeVerify, SweepOutcome, SweepService};
pub use spec::{JobSpec, SweepSpec};

/// Everything that can go wrong while running a sweep.
#[derive(Debug)]
pub enum ServiceError {
    /// A job's campaign failed to build or run.
    Campaign(CampaignError),
    /// A checkpoint file could not be read or written.
    Io {
        /// The checkpoint path involved.
        path: String,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
    /// A checkpoint file exists but does not parse.
    Json {
        /// The checkpoint path involved.
        path: String,
        /// The underlying parse error.
        source: serde_json::Error,
    },
    /// The checkpoint on disk belongs to a different sweep definition.
    SpecMismatch {
        /// Digest of the spec this service was configured with.
        expected: u64,
        /// Digest recorded in the checkpoint.
        found: u64,
    },
    /// Resume verification re-ran a committed shard and got a different
    /// digest — the checkpoint cannot be trusted.
    VerifyFailed {
        /// The shard that failed to reproduce.
        shard: usize,
        /// Digest recorded in the checkpoint.
        expected: u64,
        /// Digest the re-run produced.
        found: u64,
    },
    /// The quarantine threshold tripped: more jobs failed or timed out than
    /// the service's `max_job_failures` allows.  Everything committed so
    /// far (including the shard that crossed the threshold) is durable in
    /// the checkpoint; re-run with a higher threshold to continue.
    TooManyFailures {
        /// The configured threshold.
        limit: usize,
        /// Quarantined jobs committed so far.
        failed: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Campaign(err) => write!(f, "campaign failed: {err}"),
            ServiceError::Io { path, source } => {
                write!(f, "checkpoint I/O failed for `{path}`: {source}")
            }
            ServiceError::Json { path, source } => {
                write!(f, "checkpoint `{path}` is malformed: {source}")
            }
            ServiceError::SpecMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different sweep \
                 (spec digest {found:016x}, expected {expected:016x})"
            ),
            ServiceError::VerifyFailed {
                shard,
                expected,
                found,
            } => write!(
                f,
                "resume verification failed: shard {shard} re-ran to digest \
                 {found:016x}, checkpoint recorded {expected:016x}"
            ),
            ServiceError::TooManyFailures { limit, failed } => write!(
                f,
                "sweep stopped: {failed} job(s) quarantined, exceeding the \
                 --max-job-failures threshold of {limit}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Campaign(err) => Some(err),
            ServiceError::Io { source, .. } => Some(source),
            ServiceError::Json { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CampaignError> for ServiceError {
    fn from(err: CampaignError) -> Self {
        ServiceError::Campaign(err)
    }
}
