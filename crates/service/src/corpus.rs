//! Crash-dedup corpus: cluster finished jobs by what actually broke.
//!
//! A fleet-scale sweep finds the same seeded vulnerability thousands of
//! times; the operator needs *clusters*, not a thousand near-identical
//! reports.  The cluster key pairs the crash dumps' identity digest (what
//! crashed, where — timestamps excluded) with the trace's state-coverage
//! signature (which protocol states the run exercised), the cheap stateful
//! clustering "Is Stateful Fuzzing Really Challenging?" recommends.  The
//! first job to reach a cluster donates its trace as the exemplar; later
//! members only bump counts.

use serde_json::{Error, JsonStreamReader, JsonStreamWriter, StreamDeserialize, StreamSerialize};
use sniffer::Trace;

/// The dedup key: crash identity × state-coverage signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ClusterKey {
    /// Combined identity digest of the job's crash dumps
    /// ([`crate::digest::crash_dumps_digest`]).
    pub crash_digest: u64,
    /// State-coverage bitmask of the job's merged trace
    /// ([`sniffer::StateCoverage::signature`]).
    pub coverage_signature: u32,
}

impl StreamSerialize for ClusterKey {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("crash_digest", &self.crash_digest)
            .field("coverage_signature", &self.coverage_signature)
            .end_object();
    }
}

impl StreamDeserialize for ClusterKey {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.begin_object()?;
        let crash_digest = r.key("crash_digest")?.value()?;
        let coverage_signature = r.key("coverage_signature")?.value()?;
        r.end_object()?;
        Ok(ClusterKey {
            crash_digest,
            coverage_signature,
        })
    }
}

/// One dedup cluster: every job that tripped the same crash the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashCluster {
    /// The dedup key all members share.
    pub key: ClusterKey,
    /// Identifiers of the seeded vulnerabilities that fired (sorted,
    /// deduplicated).
    pub vuln_ids: Vec<String>,
    /// Human-readable description from the first member's evidence.
    pub description: String,
    /// Sweep-wide indices of the member jobs, ascending.
    pub members: Vec<usize>,
    /// FNV-1a trace digest of each member job, parallel to `members` — every
    /// member's trace identity is pinned even though only the exemplar's
    /// trace is stored in full.
    pub member_trace_digests: Vec<u64>,
    /// The member whose trace is kept as the exemplar (the first committed).
    pub exemplar_job: usize,
    /// The exemplar's merged packet trace — enough to replay the crash.
    pub exemplar_trace: Trace,
}

impl CrashCluster {
    /// Number of member jobs.
    pub fn count(&self) -> usize {
        self.members.len()
    }
}

impl StreamSerialize for CrashCluster {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("key", &self.key)
            .field("vuln_ids", &self.vuln_ids)
            .field("description", &self.description)
            .field("members", &self.members)
            .field("member_trace_digests", &self.member_trace_digests)
            .field("exemplar_job", &self.exemplar_job)
            .field("exemplar_trace", &self.exemplar_trace)
            .end_object();
    }
}

impl StreamDeserialize for CrashCluster {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.begin_object()?;
        let key = r.key("key")?.value()?;
        let vuln_ids = r.key("vuln_ids")?.value()?;
        let description = r.key("description")?.value()?;
        let members = r.key("members")?.value()?;
        let member_trace_digests = r.key("member_trace_digests")?.value()?;
        let exemplar_job = r.key("exemplar_job")?.value()?;
        let exemplar_trace = r.key("exemplar_trace")?.value()?;
        r.end_object()?;
        Ok(CrashCluster {
            key,
            vuln_ids,
            description,
            members,
            member_trace_digests,
            exemplar_job,
            exemplar_trace,
        })
    }
}

/// The corpus store: clusters in first-seen order.
///
/// Jobs are inserted in commit order (shard by shard, jobs ascending within
/// a shard), so the cluster list — and therefore the serialized corpus — is
/// deterministic for a given sweep, interrupted or not.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStore {
    clusters: Vec<CrashCluster>,
}

impl CorpusStore {
    /// An empty store.
    pub fn new() -> Self {
        CorpusStore::default()
    }

    /// Records a crashing job.  A new key opens a cluster with `trace` as
    /// its exemplar; a known key only appends the member (and its trace
    /// digest) and merges the vulnerability identifiers.
    pub fn insert(
        &mut self,
        job: usize,
        trace_digest: u64,
        key: ClusterKey,
        vuln_ids: impl IntoIterator<Item = String>,
        description: &str,
        trace: &Trace,
    ) {
        match self.clusters.iter_mut().find(|c| c.key == key) {
            Some(cluster) => {
                cluster.members.push(job);
                cluster.member_trace_digests.push(trace_digest);
                for id in vuln_ids {
                    if !cluster.vuln_ids.contains(&id) {
                        cluster.vuln_ids.push(id);
                        cluster.vuln_ids.sort();
                    }
                }
            }
            None => {
                let mut ids: Vec<String> = vuln_ids.into_iter().collect();
                ids.sort();
                ids.dedup();
                self.clusters.push(CrashCluster {
                    key,
                    vuln_ids: ids,
                    description: description.to_owned(),
                    members: vec![job],
                    member_trace_digests: vec![trace_digest],
                    exemplar_job: job,
                    exemplar_trace: trace.clone(),
                });
            }
        }
    }

    /// The clusters, in first-seen order.
    pub fn clusters(&self) -> &[CrashCluster] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when no job has crashed yet.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total member jobs across all clusters.
    pub fn member_count(&self) -> usize {
        self.clusters.iter().map(CrashCluster::count).sum()
    }

    /// The clusters ranked by novelty, most novel first: wider state
    /// coverage (more bits in the key's coverage signature) outranks
    /// narrower, rarer crashes (fewer members) outrank common ones, and
    /// first-seen order breaks the remaining ties.  This is what the dedup
    /// key's coverage half buys the operator — a triage order that puts the
    /// crashes reached through the most protocol state on top.
    pub fn ranked_by_novelty(&self) -> Vec<&CrashCluster> {
        let mut ranked: Vec<(usize, &CrashCluster)> = self.clusters.iter().enumerate().collect();
        ranked.sort_by(|(ia, a), (ib, b)| {
            b.key
                .coverage_signature
                .count_ones()
                .cmp(&a.key.coverage_signature.count_ones())
                .then(a.members.len().cmp(&b.members.len()))
                .then(ia.cmp(ib))
        });
        ranked.into_iter().map(|(_, c)| c).collect()
    }
}

impl StreamSerialize for CorpusStore {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("clusters", &self.clusters)
            .end_object();
    }
}

impl StreamDeserialize for CorpusStore {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.begin_object()?;
        let clusters = r.key("clusters")?.value()?;
        r.end_object()?;
        Ok(CorpusStore { clusters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(crash: u64, coverage: u32) -> ClusterKey {
        ClusterKey {
            crash_digest: crash,
            coverage_signature: coverage,
        }
    }

    #[test]
    fn same_key_jobs_collapse_into_one_cluster() {
        let mut store = CorpusStore::new();
        store.insert(0, 0xA0, key(7, 3), ["V1".into()], "DoS", &Trace::new());
        store.insert(3, 0xA3, key(7, 3), ["V1".into()], "DoS", &Trace::new());
        store.insert(5, 0xA5, key(9, 3), ["V2".into()], "crash", &Trace::new());
        assert_eq!(store.len(), 2);
        assert_eq!(store.member_count(), 3);
        assert_eq!(store.clusters()[0].members, vec![0, 3]);
        assert_eq!(store.clusters()[0].member_trace_digests, vec![0xA0, 0xA3]);
        assert_eq!(store.clusters()[0].exemplar_job, 0);
        assert_eq!(store.clusters()[1].members, vec![5]);
        assert_eq!(store.clusters()[1].member_trace_digests, vec![0xA5]);
    }

    #[test]
    fn novelty_ranking_prefers_wide_coverage_then_rarity() {
        let mut store = CorpusStore::new();
        // Two members, narrow coverage (2 bits).
        store.insert(0, 1, key(7, 0b011), ["V1".into()], "a", &Trace::new());
        store.insert(1, 2, key(7, 0b011), ["V1".into()], "a", &Trace::new());
        // One member, wide coverage (3 bits) — most novel.
        store.insert(2, 3, key(8, 0b10101), ["V2".into()], "b", &Trace::new());
        // One member, narrow coverage — rarer than the first cluster.
        store.insert(3, 4, key(9, 0b110), ["V3".into()], "c", &Trace::new());
        let ranked = store.ranked_by_novelty();
        let digests: Vec<u64> = ranked.iter().map(|c| c.key.crash_digest).collect();
        assert_eq!(digests, vec![8, 9, 7]);
    }

    #[test]
    fn corpus_round_trips_through_the_streaming_pair() {
        let mut store = CorpusStore::new();
        store.insert(
            2,
            0xB2,
            key(11, 5),
            ["V3".into(), "V1".into()],
            "x",
            &Trace::new(),
        );
        let json = serde_json::to_string_streamed(&store);
        let back: CorpusStore = serde_json::from_str_streamed(&json).unwrap();
        assert_eq!(back, store);
        assert_eq!(serde_json::to_string_streamed(&back), json);
        assert_eq!(back.clusters()[0].vuln_ids, vec!["V1", "V3"]);
    }
}
