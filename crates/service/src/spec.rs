//! Sweep specifications: the persistent work queue's shape.
//!
//! A sweep is the cross product `targets × seeds`, enumerated target-major
//! (all seeds of the first target, then the second, …) — the same order
//! [`l2fuzz::campaign::SeedSweepExecutor`] produces, so a sweep's job list
//! is also the index into an equivalent in-process campaign's outcomes.
//! Jobs are grouped into fixed-size *shards*, the unit of worker dispatch
//! and of checkpoint commit.

use btstack::ProfileId;
use serde_json::{Error, JsonStreamReader, JsonStreamWriter, StreamDeserialize, StreamSerialize};

use crate::digest::Fnv64;

/// The immutable description of a sweep: which jobs exist and how they are
/// sharded.  Everything the service does is a pure function of this spec
/// plus the campaign determinism guarantees, which is what makes
/// checkpoints portable across processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Human-readable sweep name (lands in checkpoints and reports).
    pub name: String,
    /// Device profiles to fuzz, in order.
    pub targets: Vec<ProfileId>,
    /// Campaign seeds per target, in order.
    pub seeds: Vec<u64>,
    /// Per-job transmission budget in packets; `None` runs the detection
    /// fuzzer's own stopping rule.
    pub budget_packets: Option<u64>,
    /// Jobs per shard (the checkpoint commit granularity).
    pub shard_size: usize,
    /// Per-job virtual-time watchdog in seconds; a job whose virtual clock
    /// runs past this after link establishment is quarantined as
    /// [`crate::checkpoint::JobOutcome::TimedOut`].  `None` disarms it.
    pub watchdog_secs: Option<u64>,
}

/// One `(target, seed)` unit of work, addressed by its sweep-wide index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Sweep-wide job index (target-major).
    pub index: usize,
    /// Position of the target in [`SweepSpec::targets`].
    pub target_index: usize,
    /// The target profile.
    pub target: ProfileId,
    /// The campaign seed this job runs under.
    pub seed: u64,
}

impl SweepSpec {
    /// Creates a spec with the default shard size (4 jobs) and no packet
    /// budget.
    ///
    /// # Panics
    /// Panics if `targets` or `seeds` is empty — a sweep with no jobs has
    /// no meaningful checkpoint.
    pub fn new(
        name: impl Into<String>,
        targets: impl IntoIterator<Item = ProfileId>,
        seeds: impl IntoIterator<Item = u64>,
    ) -> Self {
        let targets: Vec<ProfileId> = targets.into_iter().collect();
        let seeds: Vec<u64> = seeds.into_iter().collect();
        assert!(!targets.is_empty(), "sweep needs at least one target");
        assert!(!seeds.is_empty(), "sweep needs at least one seed");
        SweepSpec {
            name: name.into(),
            targets,
            seeds,
            budget_packets: None,
            shard_size: 4,
            watchdog_secs: None,
        }
    }

    /// Derives `count` sweep seeds from `base` (SplitMix64, matching
    /// [`l2fuzz::campaign::SeedSweepExecutor::derived`]).
    pub fn derived_seeds(base: u64, count: usize) -> Vec<u64> {
        (0..count as u64)
            .map(|i| btcore::splitmix64(base.wrapping_add(i)))
            .collect()
    }

    /// Sets the per-job packet budget.
    pub fn with_budget(mut self, packets: u64) -> Self {
        self.budget_packets = Some(packets);
        self
    }

    /// Sets the shard size.
    ///
    /// # Panics
    /// Panics on a zero shard size.
    pub fn with_shard_size(mut self, jobs: usize) -> Self {
        assert!(jobs > 0, "shard size must be at least one job");
        self.shard_size = jobs;
        self
    }

    /// Arms the per-job virtual-time watchdog.
    pub fn with_watchdog_secs(mut self, secs: u64) -> Self {
        self.watchdog_secs = Some(secs);
        self
    }

    /// Total number of jobs (`targets × seeds`).
    pub fn job_count(&self) -> usize {
        self.targets.len() * self.seeds.len()
    }

    /// Number of shards (the last one may be short).
    pub fn shard_count(&self) -> usize {
        self.job_count().div_ceil(self.shard_size)
    }

    /// The job indices of shard `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_jobs(&self, shard: usize) -> std::ops::Range<usize> {
        assert!(shard < self.shard_count(), "shard {shard} out of range");
        let start = shard * self.shard_size;
        start..(start + self.shard_size).min(self.job_count())
    }

    /// Resolves job `index` to its target and seed (target-major order).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn job(&self, index: usize) -> JobSpec {
        assert!(index < self.job_count(), "job {index} out of range");
        let target_index = index / self.seeds.len();
        JobSpec {
            index,
            target_index,
            target: self.targets[target_index],
            seed: self.seeds[index % self.seeds.len()],
        }
    }

    /// Digest of the spec's identity.  A checkpoint stores this so a resume
    /// against a *different* sweep definition is rejected instead of
    /// silently continuing the wrong work.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(&self.name);
        for target in &self.targets {
            h.write_str(&target.to_string());
        }
        h.write_u64(self.seeds.len() as u64);
        for seed in &self.seeds {
            h.write_u64(*seed);
        }
        h.write_u64(self.budget_packets.unwrap_or(u64::MAX));
        h.write_u64(self.shard_size as u64);
        h.write_u64(self.watchdog_secs.unwrap_or(u64::MAX));
        h.finish()
    }
}

impl StreamSerialize for SweepSpec {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("name", &self.name)
            .field("targets", &self.targets)
            .field("seeds", &self.seeds)
            .field("budget_packets", &self.budget_packets)
            .field("shard_size", &self.shard_size)
            .field("watchdog_secs", &self.watchdog_secs)
            .end_object();
    }
}

impl StreamDeserialize for SweepSpec {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.begin_object()?;
        let name = r.key("name")?.value()?;
        let targets = r.key("targets")?.value()?;
        let seeds = r.key("seeds")?.value()?;
        let budget_packets = r.key("budget_packets")?.value()?;
        let shard_size = r.key("shard_size")?.value()?;
        let watchdog_secs = r.key("watchdog_secs")?.value()?;
        r.end_object()?;
        Ok(SweepSpec {
            name,
            targets,
            seeds,
            budget_packets,
            shard_size,
            watchdog_secs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::new(
            "unit",
            [ProfileId::D2, ProfileId::D5],
            SweepSpec::derived_seeds(0x5EED, 3),
        )
        .with_shard_size(4)
    }

    #[test]
    fn jobs_enumerate_target_major() {
        let spec = spec();
        assert_eq!(spec.job_count(), 6);
        assert_eq!(spec.shard_count(), 2);
        assert_eq!(spec.shard_jobs(0), 0..4);
        assert_eq!(spec.shard_jobs(1), 4..6);
        let job = spec.job(0);
        assert_eq!((job.target, job.target_index), (ProfileId::D2, 0));
        let job = spec.job(3);
        assert_eq!((job.target, job.target_index), (ProfileId::D5, 1));
        assert_eq!(job.seed, spec.seeds[0]);
        let job = spec.job(5);
        assert_eq!((job.target, job.seed), (ProfileId::D5, spec.seeds[2]));
    }

    #[test]
    fn digest_tracks_identity() {
        let a = spec();
        assert_eq!(a.digest(), spec().digest());
        assert_ne!(a.digest(), spec().with_budget(100).digest());
        assert_ne!(a.digest(), spec().with_shard_size(2).digest());
        assert_ne!(a.digest(), spec().with_watchdog_secs(30).digest());
    }

    #[test]
    fn spec_round_trips_through_the_streaming_pair() {
        let spec = spec().with_budget(250);
        let json = serde_json::to_string_streamed(&spec);
        let back: SweepSpec = serde_json::from_str_streamed(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(serde_json::to_string_streamed(&back), json);
    }
}
