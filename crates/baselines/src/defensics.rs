//! A Defensics-style template fuzzer.
//!
//! The paper characterises Defensics as a commercial, specification-template
//! based tool: it runs through well-formed protocol exchanges, injects only
//! the occasional anomaly ("most of the test packets are normal packets"),
//! tests a single packet per state, and is extremely slow (3.37 packets per
//! second in §IV-C).  Those are exactly the behaviours reproduced here.

use btcore::{Cid, Identifier, Psm, SimClock};
use hci::medium::LinkHandle;
use l2cap::command::{
    Command, ConfigureRequest, ConfigureResponse, ConnectionRequest, DisconnectionRequest,
};
use l2cap::consts::ConfigureResult;
use l2cap::options::ConfigOption;
use l2cap::packet::SignalingPacket;
use l2fuzz::fuzzer::{FuzzCtx, Fuzzer};
use l2fuzz::report::FuzzReport;
use std::time::Duration;

/// Template-driven baseline fuzzer.
#[derive(Debug)]
pub struct DefensicsFuzzer {
    /// Extra virtual time spent generating each test case (what makes the
    /// tool slow).
    think_time: Duration,
    next_scid: u16,
    anomaly_counter: u64,
}

impl Default for DefensicsFuzzer {
    fn default() -> Self {
        DefensicsFuzzer::new()
    }
}

impl DefensicsFuzzer {
    /// Creates the fuzzer; clock and link come from the campaign context.
    pub fn new() -> Self {
        DefensicsFuzzer {
            think_time: Duration::from_millis(295),
            next_scid: 0x0140,
            anomaly_counter: 0,
        }
    }

    fn send(
        &mut self,
        clock: &SimClock,
        link: &mut LinkHandle,
        id: u8,
        command: Command,
    ) -> Vec<Command> {
        crate::send_command(clock, self.think_time, link, id, &command)
    }

    fn send_raw(&mut self, clock: &SimClock, link: &mut LinkHandle, packet: SignalingPacket) {
        clock.advance(self.think_time);
        let _ = link.send_frame(&packet.to_frame_in(link.arena()));
    }
}

impl Fuzzer for DefensicsFuzzer {
    fn name(&self) -> &'static str {
        "Defensics"
    }

    fn fuzz(&mut self, ctx: &mut FuzzCtx<'_>) -> Option<FuzzReport> {
        let clock = ctx.clock.clone();
        while !ctx.budget_exhausted() {
            let scid = Cid(self.next_scid);
            self.next_scid = self.next_scid.wrapping_add(1).max(0x0140);

            // One fully conformant exchange per test cycle.
            let responses = self.send(
                &clock,
                ctx.link,
                1,
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm::SDP,
                    scid,
                }),
            );
            let dcid = responses
                .iter()
                .find_map(|c| match c {
                    Command::ConnectionResponse(r) if r.dcid != Cid::NULL => Some(r.dcid),
                    _ => None,
                })
                .unwrap_or(scid);

            self.anomaly_counter += 1;
            if self.anomaly_counter.is_multiple_of(25) {
                // The occasional anomalous test case: a Configure Request
                // with a short garbage tail (the template's "overflow"
                // element).
                let mut data = dcid.value().to_le_bytes().to_vec();
                data.extend_from_slice(&[0x00, 0x00]);
                let declared = data.len() as u16;
                data.extend_from_slice(&[0x41; 6]);
                self.send_raw(
                    &clock,
                    ctx.link,
                    SignalingPacket {
                        identifier: Identifier(2),
                        code: 0x04,
                        declared_data_len: declared,
                        data: data.into(),
                    },
                );
            } else {
                self.send(
                    &clock,
                    ctx.link,
                    2,
                    Command::ConfigureRequest(ConfigureRequest {
                        dcid,
                        flags: 0,
                        options: vec![ConfigOption::Mtu(672)],
                    }),
                );
            }
            self.send(
                &clock,
                ctx.link,
                3,
                Command::ConfigureResponse(ConfigureResponse {
                    scid: dcid,
                    flags: 0,
                    result: ConfigureResult::Success,
                    options: vec![],
                }),
            );
            self.send(
                &clock,
                ctx.link,
                4,
                Command::DisconnectionRequest(DisconnectionRequest { dcid, scid }),
            );
            if !ctx.link.device_alive() {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btstack::profiles::{DeviceProfile, ProfileId};
    use l2fuzz::campaign::{Campaign, OraclePolicy};
    use l2fuzz::fuzzer::TxBudget;
    use sniffer::{MetricsSummary, StateCoverage, Trace};

    fn run(max_packets: u64) -> Trace {
        Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D2))
            .fuzzer(|| Box::new(DefensicsFuzzer::new()))
            .budget(TxBudget::packets(max_packets))
            .oracle(OraclePolicy::None)
            .auto_restart(true)
            .seed(7)
            .run()
            .expect("campaign runs")
            .into_single()
            .trace
    }

    #[test]
    fn defensics_sends_mostly_normal_packets_slowly() {
        let trace = run(400);
        let metrics = MetricsSummary::from_trace(&trace);
        assert!(metrics.transmitted >= 400);
        assert!(
            metrics.mp_ratio < 0.10,
            "MP ratio {:.3} should be tiny",
            metrics.mp_ratio
        );
        assert!(
            metrics.pr_ratio < 0.10,
            "PR ratio {:.3} should be tiny",
            metrics.pr_ratio
        );
        assert!(
            metrics.packets_per_second < 20.0,
            "Defensics should be slow, got {:.1} pps",
            metrics.packets_per_second
        );
    }

    #[test]
    fn defensics_covers_about_seven_states() {
        let trace = run(400);
        let coverage = StateCoverage::from_trace(&trace);
        assert_eq!(coverage.count(), 7, "covered: {:?}", coverage.states());
    }
}
