//! A Defensics-style template fuzzer.
//!
//! The paper characterises Defensics as a commercial, specification-template
//! based tool: it runs through well-formed protocol exchanges, injects only
//! the occasional anomaly ("most of the test packets are normal packets"),
//! tests a single packet per state, and is extremely slow (3.37 packets per
//! second in §IV-C).  Those are exactly the behaviours reproduced here.

use btcore::{Cid, Identifier, Psm, SimClock};
use hci::air::AclLink;
use l2cap::command::{
    Command, ConfigureRequest, ConfigureResponse, ConnectionRequest, DisconnectionRequest,
};
use l2cap::consts::ConfigureResult;
use l2cap::options::ConfigOption;
use l2cap::packet::{parse_signaling, signaling_frame, SignalingPacket};
use l2fuzz::fuzzer::Fuzzer;
use std::time::Duration;

/// Template-driven baseline fuzzer.
pub struct DefensicsFuzzer {
    clock: SimClock,
    /// Extra virtual time spent generating each test case (what makes the
    /// tool slow).
    think_time: Duration,
    next_scid: u16,
    anomaly_counter: u64,
}

impl DefensicsFuzzer {
    /// Creates the fuzzer; `clock` is the shared virtual clock.
    pub fn new(clock: SimClock) -> Self {
        DefensicsFuzzer {
            clock,
            think_time: Duration::from_millis(295),
            next_scid: 0x0140,
            anomaly_counter: 0,
        }
    }

    fn send(&mut self, link: &mut AclLink, id: u8, command: Command) -> Vec<Command> {
        self.clock.advance(self.think_time);
        link.send_frame(&signaling_frame(Identifier(id.max(1)), command))
            .iter()
            .filter_map(|f| parse_signaling(f).ok().map(|p| p.command()))
            .collect()
    }

    fn send_raw(&mut self, link: &mut AclLink, packet: SignalingPacket) {
        self.clock.advance(self.think_time);
        let _ = link.send_frame(&packet.into_frame());
    }
}

impl Fuzzer for DefensicsFuzzer {
    fn name(&self) -> &'static str {
        "Defensics"
    }

    fn fuzz(&mut self, link: &mut AclLink, max_packets: usize) {
        let start = link.frames_sent();
        while (link.frames_sent() - start) < max_packets as u64 {
            let scid = Cid(self.next_scid);
            self.next_scid = self.next_scid.wrapping_add(1).max(0x0140);

            // One fully conformant exchange per test cycle.
            let responses = self.send(
                link,
                1,
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm::SDP,
                    scid,
                }),
            );
            let dcid = responses
                .iter()
                .find_map(|c| match c {
                    Command::ConnectionResponse(r) if r.dcid != Cid::NULL => Some(r.dcid),
                    _ => None,
                })
                .unwrap_or(scid);

            self.anomaly_counter += 1;
            if self.anomaly_counter.is_multiple_of(25) {
                // The occasional anomalous test case: a Configure Request
                // with a short garbage tail (the template's "overflow"
                // element).
                let mut data = dcid.value().to_le_bytes().to_vec();
                data.extend_from_slice(&[0x00, 0x00]);
                let declared = data.len() as u16;
                data.extend_from_slice(&[0x41; 6]);
                self.send_raw(
                    link,
                    SignalingPacket {
                        identifier: Identifier(2),
                        code: 0x04,
                        declared_data_len: declared,
                        data,
                    },
                );
            } else {
                self.send(
                    link,
                    2,
                    Command::ConfigureRequest(ConfigureRequest {
                        dcid,
                        flags: 0,
                        options: vec![ConfigOption::Mtu(672)],
                    }),
                );
            }
            self.send(
                link,
                3,
                Command::ConfigureResponse(ConfigureResponse {
                    scid: dcid,
                    flags: 0,
                    result: ConfigureResult::Success,
                    options: vec![],
                }),
            );
            self.send(
                link,
                4,
                Command::DisconnectionRequest(DisconnectionRequest { dcid, scid }),
            );
            if !link.device_alive() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::FuzzRng;
    use btstack::device::share;
    use btstack::profiles::{DeviceProfile, ProfileId};
    use hci::air::AirMedium;
    use hci::link::{new_tap, LinkConfig};
    use sniffer::{MetricsSummary, StateCoverage, Trace};

    fn run(max_packets: usize) -> Trace {
        let clock = SimClock::new();
        let mut air = AirMedium::new(clock.clone());
        let profile = DeviceProfile::table5(ProfileId::D2);
        let mut device = profile.build(clock.clone(), FuzzRng::seed_from(7));
        device.set_auto_restart(true);
        let (_, adapter) = share(device);
        air.register(adapter);
        let mut link = air
            .connect(profile.addr, LinkConfig::default(), FuzzRng::seed_from(8))
            .unwrap();
        let tap = new_tap();
        link.attach_tap(tap.clone());
        DefensicsFuzzer::new(clock).fuzz(&mut link, max_packets);
        Trace::from_tap(&tap)
    }

    #[test]
    fn defensics_sends_mostly_normal_packets_slowly() {
        let trace = run(400);
        let metrics = MetricsSummary::from_trace(&trace);
        assert!(metrics.transmitted >= 400);
        assert!(
            metrics.mp_ratio < 0.10,
            "MP ratio {:.3} should be tiny",
            metrics.mp_ratio
        );
        assert!(
            metrics.pr_ratio < 0.10,
            "PR ratio {:.3} should be tiny",
            metrics.pr_ratio
        );
        assert!(
            metrics.packets_per_second < 20.0,
            "Defensics should be slow, got {:.1} pps",
            metrics.packets_per_second
        );
    }

    #[test]
    fn defensics_covers_about_seven_states() {
        let trace = run(400);
        let coverage = StateCoverage::from_trace(&trace);
        assert_eq!(coverage.count(), 7, "covered: {:?}", coverage.states());
    }
}
