//! A Bluetooth Stack Smasher (BSS) style fuzzer.
//!
//! BSS is the 2006-era tool the paper uses as its oldest baseline: it works
//! from Bluetooth 2.1 command templates, mutates a *single field* of an
//! otherwise well-formed packet, never walks the state machine beyond the
//! initial connection, and — as the paper measures — ends up producing no
//! packets the receiver actually counts as malformed and receiving no
//! rejections (0 % MP, 0 % PR, three covered states), at a very low speed.

use btcore::{Cid, FuzzRng, Psm, SimClock};
use hci::medium::LinkHandle;
use l2cap::command::{Command, ConnectionRequest, EchoRequest, InformationRequest};
use l2fuzz::fuzzer::{FuzzCtx, Fuzzer};
use l2fuzz::report::FuzzReport;
use std::time::Duration;

/// Single-field-mutation baseline fuzzer.
#[derive(Debug, Default)]
pub struct BssFuzzer {
    connected: bool,
}

impl BssFuzzer {
    /// Creates the fuzzer; clock, link and RNG stream come from the campaign
    /// context.
    pub fn new() -> Self {
        BssFuzzer { connected: false }
    }

    fn send(
        &mut self,
        clock: &SimClock,
        link: &mut LinkHandle,
        id: u8,
        command: Command,
    ) -> Vec<Command> {
        // BSS builds each packet interactively; roughly half a second of
        // virtual time per test case reproduces its ~2 packets/second pace.
        crate::send_command(clock, Duration::from_millis(505), link, id, &command)
    }
}

impl Fuzzer for BssFuzzer {
    fn name(&self) -> &'static str {
        "BSS"
    }

    fn fuzz(&mut self, ctx: &mut FuzzCtx<'_>) -> Option<FuzzReport> {
        let clock = ctx.clock.clone();
        let mut rng: FuzzRng = ctx.rng(0xB5);
        // BSS opens one L2CAP connection at startup (its raw socket) and then
        // keeps throwing template packets at the signalling channel.
        if !self.connected {
            self.send(
                &clock,
                ctx.link,
                1,
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm::SDP,
                    scid: Cid(0x0340),
                }),
            );
            self.connected = true;
        }
        let mut i: u8 = 2;
        while !ctx.budget_exhausted() {
            // Single-field mutation of a BT 2.1 template: the mutated field is
            // the echo payload length or the information type — values the
            // receiver parses happily, which is why BSS registers neither
            // malformed packets nor rejections.
            let command = if rng.chance(0.5) {
                let len = rng.range_usize(0, 32);
                Command::EchoRequest(EchoRequest {
                    data: rng.bytes(len),
                })
            } else {
                Command::InformationRequest(InformationRequest {
                    info_type: u16::from(rng.next_u8() % 3) + 1,
                })
            };
            self.send(&clock, ctx.link, i, command);
            i = if i == 0xFF { 2 } else { i + 1 };
            if !ctx.link.device_alive() {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btstack::profiles::{DeviceProfile, ProfileId};
    use l2fuzz::campaign::{Campaign, OraclePolicy};
    use l2fuzz::fuzzer::TxBudget;
    use sniffer::{MetricsSummary, StateCoverage, Trace};

    fn run(max_packets: u64) -> Trace {
        Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D2))
            .fuzzer(|| Box::new(BssFuzzer::new()))
            .budget(TxBudget::packets(max_packets))
            .oracle(OraclePolicy::None)
            .auto_restart(true)
            .seed(9)
            .run()
            .expect("campaign runs")
            .into_single()
            .trace
    }

    #[test]
    fn bss_generates_no_malformed_packets_and_no_rejections() {
        let trace = run(300);
        let metrics = MetricsSummary::from_trace(&trace);
        assert_eq!(metrics.malformed, 0);
        assert_eq!(metrics.rejections, 0);
        assert_eq!(metrics.mutation_efficiency, 0.0);
        assert!(metrics.packets_per_second < 10.0, "BSS is slow");
    }

    #[test]
    fn bss_covers_about_three_states() {
        let trace = run(300);
        let coverage = StateCoverage::from_trace(&trace);
        assert_eq!(coverage.count(), 3, "covered: {:?}", coverage.states());
    }
}
