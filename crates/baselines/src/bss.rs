//! A Bluetooth Stack Smasher (BSS) style fuzzer.
//!
//! BSS is the 2006-era tool the paper uses as its oldest baseline: it works
//! from Bluetooth 2.1 command templates, mutates a *single field* of an
//! otherwise well-formed packet, never walks the state machine beyond the
//! initial connection, and — as the paper measures — ends up producing no
//! packets the receiver actually counts as malformed and receiving no
//! rejections (0 % MP, 0 % PR, three covered states), at a very low speed.

use btcore::{Cid, FuzzRng, Identifier, Psm, SimClock};
use hci::air::AclLink;
use l2cap::command::{Command, ConnectionRequest, EchoRequest, InformationRequest};
use l2cap::packet::{parse_signaling, signaling_frame};
use l2fuzz::fuzzer::Fuzzer;
use std::time::Duration;

/// Single-field-mutation baseline fuzzer.
pub struct BssFuzzer {
    clock: SimClock,
    rng: FuzzRng,
    connected: bool,
}

impl BssFuzzer {
    /// Creates the fuzzer.
    pub fn new(clock: SimClock, rng: FuzzRng) -> Self {
        BssFuzzer {
            clock,
            rng,
            connected: false,
        }
    }

    fn send(&mut self, link: &mut AclLink, id: u8, command: Command) -> Vec<Command> {
        // BSS builds each packet interactively; roughly half a second of
        // virtual time per test case reproduces its ~2 packets/second pace.
        self.clock.advance(Duration::from_millis(505));
        link.send_frame(&signaling_frame(Identifier(id.max(1)), command))
            .iter()
            .filter_map(|f| parse_signaling(f).ok().map(|p| p.command()))
            .collect()
    }
}

impl Fuzzer for BssFuzzer {
    fn name(&self) -> &'static str {
        "BSS"
    }

    fn fuzz(&mut self, link: &mut AclLink, max_packets: usize) {
        let start = link.frames_sent();
        // BSS opens one L2CAP connection at startup (its raw socket) and then
        // keeps throwing template packets at the signalling channel.
        if !self.connected {
            self.send(
                link,
                1,
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm::SDP,
                    scid: Cid(0x0340),
                }),
            );
            self.connected = true;
        }
        let mut i: u8 = 2;
        while (link.frames_sent() - start) < max_packets as u64 {
            // Single-field mutation of a BT 2.1 template: the mutated field is
            // the echo payload length or the information type — values the
            // receiver parses happily, which is why BSS registers neither
            // malformed packets nor rejections.
            let command = if self.rng.chance(0.5) {
                let len = self.rng.range_usize(0, 32);
                Command::EchoRequest(EchoRequest {
                    data: self.rng.bytes(len),
                })
            } else {
                Command::InformationRequest(InformationRequest {
                    info_type: u16::from(self.rng.next_u8() % 3) + 1,
                })
            };
            self.send(link, i, command);
            i = if i == 0xFF { 2 } else { i + 1 };
            if !link.device_alive() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btstack::device::share;
    use btstack::profiles::{DeviceProfile, ProfileId};
    use hci::air::AirMedium;
    use hci::link::{new_tap, LinkConfig};
    use sniffer::{MetricsSummary, StateCoverage, Trace};

    fn run(max_packets: usize) -> Trace {
        let clock = SimClock::new();
        let mut air = AirMedium::new(clock.clone());
        let profile = DeviceProfile::table5(ProfileId::D2);
        let mut device = profile.build(clock.clone(), FuzzRng::seed_from(7));
        device.set_auto_restart(true);
        let (_, adapter) = share(device);
        air.register(adapter);
        let mut link = air
            .connect(profile.addr, LinkConfig::default(), FuzzRng::seed_from(8))
            .unwrap();
        let tap = new_tap();
        link.attach_tap(tap.clone());
        BssFuzzer::new(clock, FuzzRng::seed_from(9)).fuzz(&mut link, max_packets);
        Trace::from_tap(&tap)
    }

    #[test]
    fn bss_generates_no_malformed_packets_and_no_rejections() {
        let trace = run(300);
        let metrics = MetricsSummary::from_trace(&trace);
        assert_eq!(metrics.malformed, 0);
        assert_eq!(metrics.rejections, 0);
        assert_eq!(metrics.mutation_efficiency, 0.0);
        assert!(metrics.packets_per_second < 10.0, "BSS is slow");
    }

    #[test]
    fn bss_covers_about_three_states() {
        let trace = run(300);
        let coverage = StateCoverage::from_trace(&trace);
        assert_eq!(coverage.count(), 3, "covered: {:?}", coverage.states());
    }
}
