//! Behaviour-faithful re-implementations of the Bluetooth fuzzers the paper
//! compares against (§IV, Table VII, Figs. 8–11).
//!
//! These are not line-by-line ports of the original tools (two of which are
//! proprietary); they reproduce the *strategies* the paper describes and
//! attributes the comparison results to:
//!
//! * [`defensics::DefensicsFuzzer`] — template-driven, mostly well-formed
//!   test cases, one test packet per state, very low throughput.
//! * [`bfuzz::BFuzzFuzzer`] — replays previously-vulnerable seed packets and
//!   mutates almost every field (including dependent length fields), so most
//!   of its traffic is rejected as "command not understood".
//! * [`bss::BssFuzzer`] — Bluetooth Stack Smasher: mutates a single field of
//!   old (Bluetooth 2.1 era) command templates from the closed state, never
//!   producing packets the receiver counts as malformed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfuzz;
pub mod bss;
pub mod defensics;

pub use bfuzz::BFuzzFuzzer;
pub use bss::BssFuzzer;
pub use defensics::DefensicsFuzzer;

use btcore::{Identifier, SimClock};
use hci::medium::LinkHandle;
use l2cap::command::Command;
use l2cap::packet::parse_signaling;
use std::time::Duration;

/// Shared transmit helper of the three baselines: charge the tool's
/// per-test-case think time, frame the command into the link's buffer arena
/// and send it.
///
/// Every baseline only ever inspects Connection Responses in the answers
/// (to learn the allocated DCID), so only those are decoded — the rest of
/// the response path stays allocation-free.
pub(crate) fn send_command(
    clock: &SimClock,
    think_time: Duration,
    link: &mut LinkHandle,
    id: u8,
    command: &Command,
) -> Vec<Command> {
    clock.advance(think_time);
    link.send_frame(&l2cap::packet::signaling_frame_in(
        link.arena(),
        Identifier(id.max(1)),
        command,
    ))
    .iter()
    .filter_map(|f| parse_signaling(f).ok())
    .filter(|p| p.code == l2cap::code::CommandCode::ConnectionResponse.value())
    .map(|p| p.command())
    .collect()
}
