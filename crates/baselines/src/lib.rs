//! Behaviour-faithful re-implementations of the Bluetooth fuzzers the paper
//! compares against (§IV, Table VII, Figs. 8–11).
//!
//! These are not line-by-line ports of the original tools (two of which are
//! proprietary); they reproduce the *strategies* the paper describes and
//! attributes the comparison results to:
//!
//! * [`defensics::DefensicsFuzzer`] — template-driven, mostly well-formed
//!   test cases, one test packet per state, very low throughput.
//! * [`bfuzz::BFuzzFuzzer`] — replays previously-vulnerable seed packets and
//!   mutates almost every field (including dependent length fields), so most
//!   of its traffic is rejected as "command not understood".
//! * [`bss::BssFuzzer`] — Bluetooth Stack Smasher: mutates a single field of
//!   old (Bluetooth 2.1 era) command templates from the closed state, never
//!   producing packets the receiver counts as malformed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfuzz;
pub mod bss;
pub mod defensics;

pub use bfuzz::BFuzzFuzzer;
pub use bss::BssFuzzer;
pub use defensics::DefensicsFuzzer;
