//! A BFuzz-style replay-and-mutate fuzzer.
//!
//! The paper describes BFuzz (the IoTcube network fuzzer) as replaying
//! packets "previously determined to be vulnerable" and mutating almost every
//! field — including the dependent ones — so the bulk of its traffic is
//! turned away by the target ("command not understood" / "invalid CID"),
//! giving it the highest packet-rejection ratio of the four tools (91.6 %)
//! and a very small effective mutation efficiency.

use btcore::{Cid, FuzzRng, Identifier, Psm, SimClock};
use hci::medium::LinkHandle;
use l2cap::command::{Command, ConfigureRequest, ConnectionRequest, DisconnectionRequest};
use l2cap::options::ConfigOption;
use l2cap::packet::SignalingPacket;
use l2fuzz::fuzzer::{FuzzCtx, Fuzzer};
use l2fuzz::report::FuzzReport;
use std::time::Duration;

/// Replay-and-mutate baseline fuzzer.
#[derive(Debug)]
pub struct BFuzzFuzzer {
    next_scid: u16,
}

impl Default for BFuzzFuzzer {
    fn default() -> Self {
        BFuzzFuzzer::new()
    }
}

impl BFuzzFuzzer {
    /// Creates the fuzzer; clock, link and RNG stream come from the campaign
    /// context.
    pub fn new() -> Self {
        BFuzzFuzzer { next_scid: 0x0240 }
    }

    fn send_cmd(
        &mut self,
        clock: &SimClock,
        link: &mut LinkHandle,
        id: u8,
        command: Command,
    ) -> Vec<Command> {
        crate::send_command(clock, Duration::from_micros(1_200), link, id, &command)
    }

    fn send_raw(&mut self, clock: &SimClock, link: &mut LinkHandle, packet: SignalingPacket) {
        clock.advance(Duration::from_micros(1_200));
        let _ = link.send_frame(&packet.to_frame_in(link.arena()));
    }
}

impl Fuzzer for BFuzzFuzzer {
    fn name(&self) -> &'static str {
        "BFuzz"
    }

    fn fuzz(&mut self, ctx: &mut FuzzCtx<'_>) -> Option<FuzzReport> {
        let clock = ctx.clock.clone();
        let mut rng: FuzzRng = ctx.rng(0xBF);
        while !ctx.budget_exhausted() {
            let scid = Cid(self.next_scid);
            self.next_scid = self.next_scid.wrapping_add(1).max(0x0240);

            // Seed setup: connect and send one configuration request, like
            // the seed exchange its corpus was captured from.  BFuzz never
            // completes the handshake.
            let responses = self.send_cmd(
                &clock,
                ctx.link,
                1,
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm::SDP,
                    scid,
                }),
            );
            let dcid = responses
                .iter()
                .find_map(|c| match c {
                    Command::ConnectionResponse(r) if r.dcid != Cid::NULL => Some(r.dcid),
                    _ => None,
                })
                .unwrap_or(scid);
            self.send_cmd(
                &clock,
                ctx.link,
                2,
                Command::ConfigureRequest(ConfigureRequest {
                    dcid,
                    flags: 0,
                    options: vec![ConfigOption::Mtu(672)],
                }),
            );

            // Replay barrage: mutations of the seed corpus.  Almost all of
            // them are turned away by the target.
            for i in 0..96u16 {
                if ctx.budget_exhausted() {
                    break;
                }
                let roll = rng.next_u8() % 100;
                let packet = if roll < 90 {
                    // Disconnection requests for channels that were valid in
                    // the corpus but do not exist here -> "invalid CID".
                    SignalingPacket::new(
                        Identifier((i % 250 + 1) as u8),
                        Command::DisconnectionRequest(DisconnectionRequest {
                            dcid: Cid(rng.range_u16(0x0040, 0xFFFF)),
                            scid: Cid(rng.range_u16(0x0040, 0xFFFF)),
                        }),
                    )
                } else if roll < 97 {
                    // Field-blind mutation that corrupts the command code ->
                    // "command not understood".
                    SignalingPacket::from_raw(
                        Identifier((i % 250 + 1) as u8),
                        0x1B + (rng.next_u8() % 0x40),
                        rng.bytes(8),
                    )
                } else {
                    // Field-blind mutation that truncates a known command.
                    SignalingPacket::from_raw(Identifier((i % 250 + 1) as u8), 0x02, rng.bytes(1))
                };
                self.send_raw(&clock, ctx.link, packet);
            }

            self.send_cmd(
                &clock,
                ctx.link,
                3,
                Command::DisconnectionRequest(DisconnectionRequest { dcid, scid }),
            );
            if !ctx.link.device_alive() {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btstack::profiles::{DeviceProfile, ProfileId};
    use l2fuzz::campaign::{Campaign, OraclePolicy};
    use l2fuzz::fuzzer::TxBudget;
    use sniffer::{MetricsSummary, StateCoverage, Trace};

    fn run(max_packets: u64) -> Trace {
        Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D2))
            .fuzzer(|| Box::new(BFuzzFuzzer::new()))
            .budget(TxBudget::packets(max_packets))
            .oracle(OraclePolicy::None)
            .auto_restart(true)
            .seed(9)
            .run()
            .expect("campaign runs")
            .into_single()
            .trace
    }

    #[test]
    fn bfuzz_has_a_very_high_rejection_ratio_and_low_mp_ratio() {
        let trace = run(1_000);
        let metrics = MetricsSummary::from_trace(&trace);
        assert!(
            metrics.pr_ratio > 0.60,
            "PR ratio {:.3} should dominate",
            metrics.pr_ratio
        );
        assert!(
            metrics.mp_ratio < 0.20,
            "MP ratio {:.3} should be small",
            metrics.mp_ratio
        );
        assert!(metrics.mutation_efficiency < 0.05);
        assert!(metrics.packets_per_second > 50.0, "BFuzz is a fast sender");
    }

    #[test]
    fn bfuzz_covers_about_six_states() {
        let trace = run(1_000);
        let coverage = StateCoverage::from_trace(&trace);
        assert_eq!(coverage.count(), 6, "covered: {:?}", coverage.states());
    }
}
