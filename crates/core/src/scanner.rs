//! Phase 1 — target scanning (§III-B).
//!
//! The scanner records the target's meta-information (address, name, class,
//! OUI) and probes its service ports to find one that can be used *without
//! pairing*: it sends a Connection Request to every well-known PSM and
//! classifies the response.  If every offered port demands pairing it falls
//! back to SDP, which is always pairing-free.

use btcore::{Cid, DeviceMeta, Identifier, LinkType, Psm};
use hci::medium::LinkHandle;
use l2cap::command::{
    Command, ConnectionRequest, DisconnectionRequest, LeCreditBasedConnectionRequest,
};
use l2cap::consts::ConnectionResult;
use l2cap::packet::parse_signaling;
use serde::{Deserialize, Serialize};

/// Classification of one probed port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortStatus {
    /// The port accepted a connection without pairing.
    OpenWithoutPairing,
    /// The port exists but demands pairing/authentication.
    RequiresPairing,
    /// The port is not offered.
    NotSupported,
    /// The target did not answer the probe.
    NoResponse,
}

/// Result of probing one service port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortProbe {
    /// The probed port.
    pub psm: Psm,
    /// What the probe concluded.
    pub status: PortStatus,
}

/// The complete scan report for a target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanReport {
    /// Device metadata captured during inquiry.
    pub meta: DeviceMeta,
    /// Every probed port and its status.
    pub probes: Vec<PortProbe>,
    /// The port chosen for fuzzing (pairing-free), if any.
    pub chosen_port: Option<Psm>,
}

serde_json::stream_unit_enum!(PortStatus);

impl serde_json::StreamSerialize for PortProbe {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("psm", &self.psm)
            .field("status", &self.status)
            .end_object();
    }
}

impl serde_json::StreamSerialize for ScanReport {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("meta", &self.meta)
            .field("probes", &self.probes)
            .field("chosen_port", &self.chosen_port)
            .end_object();
    }
}

serde_json::stream_unit_enum_de!(PortStatus);

impl serde_json::StreamDeserialize for PortProbe {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let psm = r.key("psm")?.value()?;
        let status = r.key("status")?.value()?;
        r.end_object()?;
        Ok(PortProbe { psm, status })
    }
}

impl serde_json::StreamDeserialize for ScanReport {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let meta = r.key("meta")?.value()?;
        let probes = r.key("probes")?.value()?;
        let chosen_port = r.key("chosen_port")?.value()?;
        r.end_object()?;
        Ok(ScanReport {
            meta,
            probes,
            chosen_port,
        })
    }
}

impl ScanReport {
    /// Ports that accepted a connection without pairing.
    pub fn pairing_free_ports(&self) -> Vec<Psm> {
        self.probes
            .iter()
            .filter(|p| p.status == PortStatus::OpenWithoutPairing)
            .map(|p| p.psm)
            .collect()
    }

    /// Ports the device offers at all (with or without pairing).
    pub fn offered_ports(&self) -> Vec<Psm> {
        self.probes
            .iter()
            .filter(|p| {
                matches!(
                    p.status,
                    PortStatus::OpenWithoutPairing | PortStatus::RequiresPairing
                )
            })
            .map(|p| p.psm)
            .collect()
    }
}

/// The target scanner.
#[derive(Debug, Default)]
pub struct TargetScanner {
    next_scid: u16,
}

impl TargetScanner {
    /// Creates a scanner.
    pub fn new() -> Self {
        TargetScanner { next_scid: 0x0070 }
    }

    /// Probes every well-known port over `link` and produces the scan
    /// report: classic PSMs via Connection Request on a BR/EDR link, LE
    /// SPSMs via LE Credit Based Connection Request on an LE-U link.
    ///
    /// Connections opened during probing are immediately torn down again so
    /// the scan does not consume the target's channel budget.
    pub fn scan(&mut self, meta: DeviceMeta, link: &mut LinkHandle) -> ScanReport {
        let le = meta.link_type == LinkType::Le;
        let catalogue = if le {
            Psm::well_known_le()
        } else {
            Psm::well_known()
        };
        let mut probes = Vec::new();
        for psm in catalogue {
            let status = if le {
                self.probe_le_port(link, *psm)
            } else {
                self.probe_port(link, *psm)
            };
            probes.push(PortProbe { psm: *psm, status });
        }
        let chosen_port = probes
            .iter()
            .find(|p| p.status == PortStatus::OpenWithoutPairing)
            .map(|p| p.psm)
            // The pairing-free fallback: SDP on classic (every device has
            // it), EATT on LE.
            .or(Some(if le { Psm::EATT } else { Psm::SDP }));
        ScanReport {
            meta,
            probes,
            chosen_port,
        }
    }

    fn probe_le_port(&mut self, link: &mut LinkHandle, spsm: Psm) -> PortStatus {
        let scid = Cid(self.next_scid);
        self.next_scid += 1;
        let frame = l2cap::packet::signaling_frame_in(
            link.arena(),
            Identifier(1),
            &Command::LeCreditBasedConnectionRequest(LeCreditBasedConnectionRequest {
                spsm: spsm.value(),
                scid,
                mtu: 247,
                mps: 64,
                initial_credits: 4,
            }),
        );
        let responses = link.send_frame(&frame);
        let mut status = PortStatus::NoResponse;
        let mut allocated_dcid = None;
        for rsp in &responses {
            if let Ok(sig) = parse_signaling(rsp) {
                if let Command::LeCreditBasedConnectionResponse(rsp) = sig.command() {
                    status = match rsp.result {
                        0 => {
                            allocated_dcid = Some(rsp.dcid);
                            PortStatus::OpenWithoutPairing
                        }
                        // Insufficient authentication / authorization /
                        // encryption: the SPSM exists but wants pairing.
                        0x0005..=0x0008 => PortStatus::RequiresPairing,
                        _ => PortStatus::NotSupported,
                    };
                }
            }
        }
        if let Some(dcid) = allocated_dcid {
            let frame = l2cap::packet::signaling_frame_in(
                link.arena(),
                Identifier(2),
                &Command::DisconnectionRequest(DisconnectionRequest { dcid, scid }),
            );
            let _ = link.send_frame(&frame);
        }
        status
    }

    fn probe_port(&mut self, link: &mut LinkHandle, psm: Psm) -> PortStatus {
        let scid = Cid(self.next_scid);
        self.next_scid += 1;
        let frame = l2cap::packet::signaling_frame_in(
            link.arena(),
            Identifier(1),
            &Command::ConnectionRequest(ConnectionRequest { psm, scid }),
        );
        let responses = link.send_frame(&frame);
        let mut status = PortStatus::NoResponse;
        let mut allocated_dcid = None;
        for rsp in &responses {
            if let Ok(sig) = parse_signaling(rsp) {
                if sig.code != l2cap::code::CommandCode::ConnectionResponse.value() {
                    continue;
                }
                if let Command::ConnectionResponse(rsp) = sig.command() {
                    status = match rsp.result {
                        ConnectionResult::Success | ConnectionResult::Pending => {
                            allocated_dcid = Some(rsp.dcid);
                            PortStatus::OpenWithoutPairing
                        }
                        ConnectionResult::RefusedSecurityBlock => PortStatus::RequiresPairing,
                        ConnectionResult::RefusedPsmNotSupported => PortStatus::NotSupported,
                        _ => PortStatus::NotSupported,
                    };
                }
            }
        }
        // Tear the probe connection down again.
        if let Some(dcid) = allocated_dcid {
            let frame = l2cap::packet::signaling_frame_in(
                link.arena(),
                Identifier(2),
                &Command::DisconnectionRequest(DisconnectionRequest { dcid, scid }),
            );
            let _ = link.send_frame(&frame);
        }
        status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::{BdAddr, FuzzRng, SimClock};
    use btstack::profiles::{DeviceProfile, ProfileId};
    use hci::link::LinkConfig;
    use hci::medium::{EventMedium, Medium};
    use l2cap::packet::signaling_frame;

    fn scan_profile(id: ProfileId) -> ScanReport {
        let clock = SimClock::new();
        let mut air = EventMedium::new(clock.clone());
        let profile = DeviceProfile::table5(id);
        let (_, adapter) =
            btstack::device::share(profile.build(clock.clone(), FuzzRng::seed_from(3)));
        air.register_shared(adapter);
        let meta = air.inquiry().pop().expect("device must be discoverable");
        let mut link = air
            .connect(profile.addr, LinkConfig::ideal(), FuzzRng::seed_from(4))
            .unwrap();
        TargetScanner::new().scan(meta, &mut link)
    }

    #[test]
    fn scan_finds_sdp_without_pairing_on_every_profile() {
        for id in ProfileId::ALL {
            let report = scan_profile(id);
            assert!(
                report.pairing_free_ports().contains(&Psm::SDP),
                "{id}: SDP must be open"
            );
            assert_eq!(report.chosen_port, Some(Psm::SDP));
        }
    }

    #[test]
    fn scan_distinguishes_pairing_protected_and_unsupported_ports() {
        let report = scan_profile(ProfileId::D2);
        let rfcomm = report.probes.iter().find(|p| p.psm == Psm::RFCOMM).unwrap();
        assert_eq!(rfcomm.status, PortStatus::RequiresPairing);
        let ots = report.probes.iter().find(|p| p.psm == Psm::OTS).unwrap();
        assert_eq!(ots.status, PortStatus::NotSupported);
        assert!(report.offered_ports().len() >= report.pairing_free_ports().len());
    }

    #[test]
    fn scan_reports_meta_information() {
        let report = scan_profile(ProfileId::D5);
        assert_eq!(report.meta.name, "Airpods 1 gen");
        assert_ne!(report.meta.addr, BdAddr::NULL);
    }

    #[test]
    fn scanning_does_not_leak_channels() {
        // After scanning, a fresh connection must still be possible even on a
        // device with a small channel budget (the probes disconnect).
        let clock = SimClock::new();
        let mut air = EventMedium::new(clock.clone());
        let profile = DeviceProfile::table5(ProfileId::D5);
        let (shared, adapter) =
            btstack::device::share(profile.build(clock.clone(), FuzzRng::seed_from(3)));
        air.register_shared(adapter);
        let meta = air.inquiry().pop().unwrap();
        let mut link = air
            .connect(profile.addr, LinkConfig::ideal(), FuzzRng::seed_from(4))
            .unwrap();
        TargetScanner::new().scan(meta, &mut link);
        assert_eq!(shared.lock().status(), btstack::device::HostStatus::Running);
        let frame = signaling_frame(
            Identifier(5),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0100),
            }),
        );
        let responses = link.send_frame(&frame);
        let accepted = responses.iter().any(|f| {
            matches!(
                parse_signaling(f).map(|s| s.command()),
                Ok(Command::ConnectionResponse(rsp)) if rsp.result == ConnectionResult::Success
            )
        });
        assert!(accepted, "post-scan connection must still be accepted");
    }
}
