//! Phase 4 — vulnerability detecting (§III-E).
//!
//! After each malformed packet the detector checks three things, mirroring
//! the paper: (1) whether the exchange produced a connection-level error,
//! (2) whether an L2CAP ping (Echo Request) still succeeds, and (3) whether a
//! crash dump appeared on the device (collected out of band through the
//! [`TargetOracle`]).  *Connection Failed* means the Bluetooth service went
//! away (denial of service); the other errors indicate a crash.

use btcore::{ConnectionError, Identifier, LinkType, PingOutcome, TargetOracle};
use hci::medium::LinkHandle;
use l2cap::command::{Command, ConnectionParameterUpdateRequest, EchoRequest};
use l2cap::packet::parse_signaling;
use serde::{Deserialize, Serialize};

use crate::retry::RetryPolicy;

/// Evidence collected when a test packet disturbed the target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VulnerabilityEvidence {
    /// Connection-level error classification.
    pub error: ConnectionError,
    /// `true` if the L2CAP ping test failed.
    pub ping_failed: bool,
    /// `true` if a new crash dump was found on the device.
    pub crash_dump: bool,
    /// Human-readable classification ("DoS" / "Crash").
    pub description: String,
}

impl serde_json::StreamSerialize for VulnerabilityEvidence {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("error", &self.error)
            .field("ping_failed", &self.ping_failed)
            .field("crash_dump", &self.crash_dump)
            .field("description", &self.description)
            .end_object();
    }
}

impl serde_json::StreamDeserialize for VulnerabilityEvidence {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let error = r.key("error")?.value()?;
        let ping_failed = r.key("ping_failed")?.value()?;
        let crash_dump = r.key("crash_dump")?.value()?;
        let description = r.key("description")?.value()?;
        r.end_object()?;
        Ok(VulnerabilityEvidence {
            error,
            ping_failed,
            crash_dump,
            description,
        })
    }
}

/// Verdict for one detection check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionVerdict {
    /// The target still behaves normally.
    Healthy,
    /// The target was disturbed; evidence attached.
    Vulnerable(VulnerabilityEvidence),
}

impl DetectionVerdict {
    /// Returns `true` for the vulnerable verdict.
    pub fn is_vulnerable(&self) -> bool {
        matches!(self, DetectionVerdict::Vulnerable(_))
    }
}

/// The vulnerability detector.
#[derive(Debug, Default)]
pub struct VulnerabilityDetector {
    next_ping_id: u8,
    pings_sent: u64,
    le: bool,
    retry: RetryPolicy,
}

impl VulnerabilityDetector {
    /// Creates a detector for a classic BR/EDR target.
    pub fn new() -> Self {
        VulnerabilityDetector {
            next_ping_id: 0x70,
            pings_sent: 0,
            le: false,
            retry: RetryPolicy::none(),
        }
    }

    /// Creates a detector for a target on the given link type.  On an LE
    /// link — which has no Echo Request — the liveness probe is a
    /// Connection Parameter Update Request, which every LE acceptor
    /// answers.
    pub fn new_on(link: LinkType) -> Self {
        VulnerabilityDetector {
            le: link == LinkType::Le,
            ..VulnerabilityDetector::new()
        }
    }

    /// Attaches a retry policy: an unanswered ping is retried with
    /// virtual-time backoff before the target is declared disturbed, so a
    /// lossy link does not masquerade as a dead target.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Number of ping packets this detector has sent.
    pub fn pings_sent(&self) -> u64 {
        self.pings_sent
    }

    /// Performs the liveness probe over the link: an L2CAP Echo Request on
    /// BR/EDR, a Connection Parameter Update Request on LE.
    pub fn ping(&mut self, link: &mut LinkHandle) -> bool {
        self.next_ping_id = if self.next_ping_id == 0xFF {
            0x70
        } else {
            self.next_ping_id + 1
        };
        self.pings_sent += 1;
        let (probe, expected_code) = if self.le {
            (
                Command::ConnectionParameterUpdateRequest(ConnectionParameterUpdateRequest {
                    interval_min: 6,
                    interval_max: 12,
                    latency: 0,
                    timeout: 200,
                }),
                l2cap::code::CommandCode::ConnectionParameterUpdateResponse,
            )
        } else {
            (
                Command::EchoRequest(EchoRequest {
                    data: vec![0x4C, 0x32],
                }),
                l2cap::code::CommandCode::EchoResponse,
            )
        };
        let frame =
            l2cap::packet::signaling_frame_in(link.arena(), Identifier(self.next_ping_id), &probe);
        let responses = link.send_frame(&frame);
        // The answer is identified by its code byte alone.
        responses.iter().any(|f| {
            parse_signaling(f)
                .map(|p| p.code == expected_code.value())
                .unwrap_or(false)
        })
    }

    /// Runs the full detection check.
    ///
    /// `target_went_silent` should be `true` when the last test packet got no
    /// answer at all; a healthy target answers (or rejects) valid-command
    /// test packets, so silence is the first hint.  The optional `oracle`
    /// refines the verdict with service status and crash dumps.
    pub fn check(
        &mut self,
        link: &mut LinkHandle,
        oracle: Option<&mut dyn TargetOracle>,
        target_went_silent: bool,
    ) -> DetectionVerdict {
        // Fast path: the target answered and nothing suggests trouble.
        if !target_went_silent {
            return DetectionVerdict::Healthy;
        }

        // Ping test over the air, retried per the policy: only a target
        // that stays mute through every backed-off attempt counts as
        // disturbed.  With `RetryPolicy::none` this is a single ping — the
        // pre-resilience packet stream, byte for byte.
        let mut ping_ok = self.ping(link);
        let mut retries = 0;
        while !ping_ok && retries + 1 < self.retry.max_attempts {
            link.clock().advance_micros(self.retry.backoff_for(retries));
            ping_ok = self.ping(link);
            retries += 1;
        }
        if ping_ok {
            return DetectionVerdict::Healthy;
        }

        // The ping failed: classify with the oracle when available.
        let (error, crash_dump) = match oracle {
            Some(oracle) => {
                let error = match oracle.ping() {
                    PingOutcome::Answered => ConnectionError::Timeout,
                    PingOutcome::Failed(e) => e,
                };
                (error, oracle.take_crash_dump())
            }
            None => (ConnectionError::Timeout, false),
        };
        let description = if error.indicates_dos() {
            "DoS"
        } else {
            "Crash"
        };
        DetectionVerdict::Vulnerable(VulnerabilityEvidence {
            error,
            ping_failed: true,
            crash_dump,
            description: description.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::{Cid, FuzzRng, Psm, SimClock};
    use btstack::device::{share, DeviceOracle, SharedSimulatedDevice};
    use btstack::profiles::{DeviceProfile, ProfileId};
    use hci::device::VirtualDevice;
    use hci::link::LinkConfig;
    use hci::medium::{EventMedium, LinkHandle, Medium};
    use l2cap::command::ConnectionRequest;
    use l2cap::packet::signaling_frame;
    use l2cap::packet::SignalingPacket;

    fn setup(id: ProfileId) -> (SharedSimulatedDevice, LinkHandle) {
        let clock = SimClock::new();
        let mut air = EventMedium::new(clock.clone());
        let profile = DeviceProfile::table5(id);
        let (shared, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(9)));
        air.register_shared(adapter);
        let link = air
            .connect(profile.addr, LinkConfig::ideal(), FuzzRng::seed_from(10))
            .unwrap();
        (shared, link)
    }

    #[test]
    fn healthy_target_passes_the_ping_test() {
        let (_dev, mut link) = setup(ProfileId::D2);
        let mut det = VulnerabilityDetector::new();
        assert!(det.ping(&mut link));
        assert_eq!(det.check(&mut link, None, false), DetectionVerdict::Healthy);
        assert_eq!(det.check(&mut link, None, true), DetectionVerdict::Healthy);
        assert!(det.pings_sent() >= 1);
    }

    #[test]
    fn retry_policy_bounds_ping_attempts_and_burns_virtual_time() {
        use hci::fault::FaultPlan;
        use hci::link::LinkConfig as Cfg;
        let clock = SimClock::new();
        let mut air = EventMedium::new(clock.clone());
        let profile = DeviceProfile::table5(ProfileId::D2);
        let (_shared, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(9)));
        air.register_shared(adapter);
        // Every frame is swallowed: the ping can never succeed, so the
        // detector must exhaust exactly `max_attempts` pings and give up.
        let config = Cfg::ideal().with_faults(FaultPlan::none().with_loss(1.0));
        let mut link = air
            .connect(profile.addr, config, FuzzRng::seed_from(10))
            .unwrap();
        let mut det = VulnerabilityDetector::new().with_retry(RetryPolicy::flat(3, 1_000));
        let before = link.clock().now_micros();
        let verdict = det.check(&mut link, None, true);
        assert!(verdict.is_vulnerable());
        assert_eq!(det.pings_sent(), 3);
        assert!(link.clock().now_micros() >= before + 2_000);
    }

    #[test]
    fn dos_is_detected_and_classified_with_the_oracle() {
        let (shared, mut link) = setup(ProfileId::D2);
        // Open a channel and send the case-study malformed packet so the
        // seeded DoS fires (hit probability is < 1, so repeat).
        let connect = signaling_frame(
            Identifier(1),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0040),
            }),
        );
        link.send_frame(&connect);
        for i in 0..2_000u16 {
            if !shared.lock().bluetooth_alive() {
                break;
            }
            let packet = SignalingPacket {
                identifier: Identifier((i % 250 + 1) as u8),
                code: 0x04,
                declared_data_len: 8,
                data: vec![0x8F, 0x7B, 0, 0, 0, 0, 0, 0, 0xD2, 0x3A, 0x91, 0x0E].into(),
            };
            link.send_frame(&packet.into_frame());
        }
        assert!(
            !shared.lock().bluetooth_alive(),
            "the seeded DoS must eventually fire"
        );

        let mut oracle = DeviceOracle::new(shared);
        let mut det = VulnerabilityDetector::new();
        match det.check(&mut link, Some(&mut oracle), true) {
            DetectionVerdict::Vulnerable(ev) => {
                assert_eq!(ev.error, ConnectionError::Failed);
                assert!(ev.ping_failed);
                assert!(ev.crash_dump);
                assert_eq!(ev.description, "DoS");
            }
            DetectionVerdict::Healthy => panic!("detector must notice the DoS"),
        }
    }

    #[test]
    fn without_oracle_a_dead_target_is_reported_as_timeout() {
        let (shared, mut link) = setup(ProfileId::D5);
        // Abnormal-PSM connection requests crash the AirPods firmware.
        for i in 0..2_000u16 {
            if !shared.lock().bluetooth_alive() {
                break;
            }
            let frame = signaling_frame(
                Identifier((i % 250 + 1) as u8),
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm(0x0101),
                    scid: Cid(0x0040 + i),
                }),
            );
            link.send_frame(&frame);
        }
        assert!(!shared.lock().bluetooth_alive());
        let mut det = VulnerabilityDetector::new();
        match det.check(&mut link, None, true) {
            DetectionVerdict::Vulnerable(ev) => {
                assert_eq!(ev.error, ConnectionError::Timeout);
                assert!(!ev.crash_dump);
            }
            DetectionVerdict::Healthy => panic!("detector must notice the crash"),
        }
    }
}
