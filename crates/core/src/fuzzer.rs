//! The common fuzzer interface shared by L2Fuzz and the baseline tools.
//!
//! Every tool runs inside a [`FuzzCtx`]: an established ACL link (with a
//! packet tap already attached by the campaign harness), a transmission
//! budget, the shared virtual clock, the target's metadata, a per-target
//! seed stream and — when the campaign enables it — an out-of-band oracle.
//! The captured trace, not the fuzzer itself, is what the comparison metrics
//! are computed from, mirroring the paper's sniffing-based methodology.

use btcore::{DeviceMeta, FuzzRng, SimClock, TargetOracle};
use hci::link::SharedTap;
use hci::medium::LinkHandle;

use crate::report::FuzzReport;
use crate::retry::RetryPolicy;

/// Per-target transmission budget of a campaign.
///
/// The budget counts frames leaving the fuzzer over the target's link —
/// normal transition packets, malformed test packets and detection pings
/// alike — matching how the paper's comparison experiments meter the tools.
/// Tools check the meter between test cycles, so the final cycle may
/// overshoot by the frames already in flight (e.g. L2Fuzz's port scan at the
/// start of a session); the budget is a cycle-granular cap, not an exact
/// frame count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxBudget(Option<u64>);

impl TxBudget {
    /// No limit: the tool decides when it is done.
    ///
    /// Only pair this with tools that terminate on their own (L2Fuzz
    /// detection mode stops at a finding or its round cap).  The trace-only
    /// baselines loop until [`FuzzCtx::budget_exhausted`] or the target
    /// dies, so an unlimited budget against a hardened or auto-restarting
    /// target never returns — give them [`TxBudget::packets`].
    pub const fn unlimited() -> Self {
        TxBudget(None)
    }

    /// At most `n` transmitted packets per target.
    pub const fn packets(n: u64) -> Self {
        TxBudget(Some(n))
    }

    /// The packet limit, or `None` when unlimited.
    pub const fn limit(&self) -> Option<u64> {
        self.0
    }
}

/// Everything a fuzzer needs to run one campaign against one target.
pub struct FuzzCtx<'a> {
    /// The established ACL link to the target.
    pub link: &'a mut LinkHandle,
    /// The shared virtual clock of this target's environment.
    pub clock: SimClock,
    /// The packet tap the harness attached to the link.
    pub tap: SharedTap,
    /// The target's inquiry metadata.
    pub meta: DeviceMeta,
    /// Per-target seed; every random decision of the tool must derive from
    /// it so campaigns are reproducible at any executor parallelism.
    pub seed: u64,
    /// Transmission budget for this target.
    pub budget: TxBudget,
    /// Out-of-band view of the target (crash dumps, service status), when
    /// the campaign runs with an oracle.
    pub oracle: Option<&'a mut dyn TargetOracle>,
    /// Retry tolerance for the fault-aware drivers (state-guide preludes,
    /// detection pings).  Defaults to [`RetryPolicy::none`]; chaos campaigns
    /// set it so a lossy link is not mistaken for a dead target.
    pub retry: RetryPolicy,
    start_frames: u64,
}

impl<'a> FuzzCtx<'a> {
    /// Wires up a context over an established link.
    pub fn new(
        link: &'a mut LinkHandle,
        clock: SimClock,
        tap: SharedTap,
        meta: DeviceMeta,
        seed: u64,
        budget: TxBudget,
        oracle: Option<&'a mut dyn TargetOracle>,
    ) -> Self {
        let start_frames = link.frames_sent();
        FuzzCtx {
            link,
            clock,
            tap,
            meta,
            seed,
            budget,
            oracle,
            retry: RetryPolicy::none(),
            start_frames,
        }
    }

    /// Frames transmitted since this context was created.
    pub fn frames_spent(&self) -> u64 {
        self.link.frames_sent().saturating_sub(self.start_frames)
    }

    /// Remaining packet budget, or `None` when unlimited.
    pub fn remaining(&self) -> Option<u64> {
        self.budget
            .limit()
            .map(|limit| limit.saturating_sub(self.frames_spent()))
    }

    /// Returns `true` once the packet budget is spent (never for an
    /// unlimited budget).
    pub fn budget_exhausted(&self) -> bool {
        matches!(self.remaining(), Some(0))
    }

    /// Derives a deterministic RNG stream for this target; distinct `label`s
    /// yield independent streams from the same per-target seed.
    ///
    /// The seed is mixed through [`btcore::splitmix64`] so no label collides
    /// with the raw per-target seed (which drives the simulated device's own
    /// RNG) or the link's loss stream.
    pub fn rng(&self, label: u64) -> FuzzRng {
        FuzzRng::seed_from(self.stream_seed(label))
    }

    /// The derived seed behind [`FuzzCtx::rng`], for tools that need a raw
    /// `u64` (e.g. to offset it per round) rather than a generator.
    pub fn stream_seed(&self, label: u64) -> u64 {
        btcore::splitmix64(self.seed ^ label.rotate_left(23))
    }

    /// The transport type of this target's link, straight from the inquiry
    /// metadata (the field every session/scheduler decision keys on).
    pub fn link_type(&self) -> btcore::LinkType {
        self.meta.link_type
    }

    /// Reborrows the link and the oracle together for one session pass.
    ///
    /// The two live in disjoint fields, so a tool can hold both mutably at
    /// once — the shape [`crate::session::L2FuzzSession::run`] needs.
    pub fn link_and_oracle(&mut self) -> (&mut LinkHandle, Option<&mut dyn TargetOracle>) {
        let oracle = match self.oracle {
            Some(ref mut o) => {
                // Coerce on the bare reference so the trait-object lifetime
                // shortens before the `Option` is rebuilt.
                let o: &mut dyn TargetOracle = &mut **o;
                Some(o)
            }
            None => None,
        };
        (&mut *self.link, oracle)
    }
}

/// A black-box Bluetooth L2CAP fuzzer.
///
/// The campaign runner (see [`crate::campaign`]) gives every tool the same
/// deal: a [`FuzzCtx`] with an established link and a budget, and lets it do
/// whatever its strategy dictates.  Tools that produce structured findings
/// (L2Fuzz) return a [`FuzzReport`]; trace-only baselines return `None` and
/// the campaign synthesizes a skeleton report from the link statistics.
///
/// Tools are `Send` because the campaign harness runs concurrent initiators
/// on worker threads, each driving its own fresh tool instance.
pub trait Fuzzer: Send {
    /// Human-readable tool name ("L2Fuzz", "Defensics", ...).
    fn name(&self) -> &'static str;

    /// Runs one campaign over the context's link, respecting
    /// [`FuzzCtx::budget_exhausted`].
    fn fuzz(&mut self, ctx: &mut FuzzCtx<'_>) -> Option<FuzzReport>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullFuzzer;
    impl Fuzzer for NullFuzzer {
        fn name(&self) -> &'static str {
            "null"
        }
        fn fuzz(&mut self, _ctx: &mut FuzzCtx<'_>) -> Option<FuzzReport> {
            None
        }
    }

    #[test]
    fn fuzzer_trait_is_object_safe() {
        let mut boxed: Box<dyn Fuzzer> = Box::new(NullFuzzer);
        assert_eq!(boxed.name(), "null");
        let _ = &mut boxed;
    }

    #[test]
    fn budget_accounting() {
        assert_eq!(TxBudget::unlimited().limit(), None);
        assert_eq!(TxBudget::packets(250).limit(), Some(250));
        assert_eq!(TxBudget::default(), TxBudget::unlimited());
    }

    #[test]
    fn rng_streams_are_deterministic_and_label_dependent() {
        use btcore::{FuzzRng, SimClock};
        use btstack::device::share;
        use btstack::profiles::{DeviceProfile, ProfileId};
        use hci::link::{new_tap, LinkConfig};
        use hci::medium::{EventMedium, Medium};

        let clock = SimClock::new();
        let mut air = EventMedium::new(clock.clone());
        let profile = DeviceProfile::table5(ProfileId::D2);
        let (device, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(1)));
        air.register_shared(adapter);
        let meta = {
            use hci::device::VirtualDevice;
            device.lock().meta()
        };
        let mut link = air
            .connect(profile.addr, LinkConfig::ideal(), FuzzRng::seed_from(2))
            .unwrap();
        let ctx = FuzzCtx::new(
            &mut link,
            clock,
            new_tap(),
            meta,
            77,
            TxBudget::packets(5),
            None,
        );
        let mut a = ctx.rng(1);
        let mut b = ctx.rng(1);
        assert_eq!(a.next_u32(), b.next_u32());
        // Distinct labels yield distinct streams (compare fresh draws)...
        let head = |label: u64| -> Vec<u32> {
            let mut rng = ctx.rng(label);
            (0..8).map(|_| rng.next_u32()).collect()
        };
        assert_ne!(head(1), head(2), "labels 1 and 2 must not share a stream");
        // ...and no label replays the raw per-target seed (the device's own
        // stream).
        assert_ne!(ctx.stream_seed(0), ctx.seed);
        assert_eq!(ctx.remaining(), Some(5));
        assert!(!ctx.budget_exhausted());
    }
}
