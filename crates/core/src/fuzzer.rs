//! The common fuzzer interface shared by L2Fuzz and the baseline tools.

use hci::air::AclLink;

/// A black-box Bluetooth L2CAP fuzzer.
///
/// The comparison experiments (§IV-C/D) run every fuzzer the same way: give
/// it an established ACL link to the target (with a packet tap already
/// attached by the harness) and a transmission budget, and let it do whatever
/// its strategy dictates.  The captured trace — not the fuzzer itself — is
/// what the metrics are computed from, mirroring the paper's
/// sniffing-based methodology.
pub trait Fuzzer {
    /// Human-readable tool name ("L2Fuzz", "Defensics", ...).
    fn name(&self) -> &'static str;

    /// Runs one campaign over `link`, transmitting at most `max_packets`
    /// L2CAP packets.
    fn fuzz(&mut self, link: &mut AclLink, max_packets: usize);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullFuzzer;
    impl Fuzzer for NullFuzzer {
        fn name(&self) -> &'static str {
            "null"
        }
        fn fuzz(&mut self, _link: &mut AclLink, _max_packets: usize) {}
    }

    #[test]
    fn fuzzer_trait_is_object_safe() {
        let mut boxed: Box<dyn Fuzzer> = Box::new(NullFuzzer);
        assert_eq!(boxed.name(), "null");
        let _ = &mut boxed;
    }
}
