//! Fuzzing configuration.

use serde::{Deserialize, Serialize};

/// Configuration of an L2Fuzz campaign.
///
/// The defaults correspond to the technique described in the paper; the
/// boolean switches exist for the ablation experiments (disabling state
/// guiding, mutating every field instead of only core fields, dropping the
/// garbage tail, or using strict instead of generous valid-command
/// boundaries).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzConfig {
    /// Number of malformed packets generated per valid command and state
    /// (the `n` of Algorithm 1).
    pub packets_per_command: usize,
    /// Use state guiding: transition the target into each reachable state and
    /// pick only the commands valid for its job.  When disabled the fuzzer
    /// sends mutated packets of random commands from the closed state only.
    pub state_guiding: bool,
    /// Mutate only the mutable-core fields (PSM/CIDP).  When disabled, every
    /// field including the dependent length/code fields is mutated, mimicking
    /// the dumb mutation of the baseline tools.
    pub core_fields_only: bool,
    /// Append a garbage tail to each malformed packet.
    pub append_garbage: bool,
    /// Maximum garbage tail length in bytes (kept below the signalling MTU so
    /// the packet is not rejected outright).
    pub max_garbage_len: usize,
    /// Use the paper's "slightly more generous" valid-command boundaries
    /// (§III-C) instead of the strict Table III mapping.
    pub generous_boundaries: bool,
    /// Mutate Configuration Request options on BR/EDR links: append a
    /// retransmission-and-flow-control option selecting ERTM or streaming
    /// mode with abnormal parameters (zero transmit window, zero MPS).
    /// This goes beyond the paper's technique — which leaves every
    /// mutable-application field at its default — so it is off by default
    /// and the default packet streams are byte-identical to the paper
    /// reproduction.
    pub mutate_config_options: bool,
    /// Stop the campaign as soon as one vulnerability is detected (the
    /// paper's Table VI methodology).  When `false` the campaign keeps going
    /// until the packet budget is exhausted (used by the comparison
    /// experiments).
    pub stop_at_first_vulnerability: bool,
    /// Maximum number of packets to transmit before giving up (0 = no limit).
    pub max_packets: usize,
    /// RNG seed for the whole campaign.  When the config runs under a
    /// campaign (via `L2FuzzTool`), this seed is mixed with the campaign's
    /// per-target stream rather than used verbatim, so campaigns stay
    /// reproducible from their own seed while distinct config seeds still
    /// produce distinct runs.
    pub seed: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            packets_per_command: 12,
            state_guiding: true,
            core_fields_only: true,
            append_garbage: true,
            max_garbage_len: 16,
            generous_boundaries: true,
            mutate_config_options: false,
            stop_at_first_vulnerability: true,
            max_packets: 0,
            seed: 0x4c32_4675,
        }
    }
}

impl FuzzConfig {
    /// Configuration used for the comparison experiments: never stop early,
    /// bounded by an explicit packet budget.
    pub fn comparison(max_packets: usize, seed: u64) -> Self {
        FuzzConfig {
            max_packets,
            seed,
            ..FuzzConfig::budget_driven()
        }
    }

    /// The paper's technique with early stopping disabled — the base for
    /// every budget-driven run (comparison and ablation experiments), where
    /// the campaign's `TxBudget` decides when to stop.
    pub fn budget_driven() -> Self {
        FuzzConfig {
            stop_at_first_vulnerability: false,
            ..FuzzConfig::default()
        }
    }

    /// Ablation: disable state guiding.
    pub fn without_state_guiding(mut self) -> Self {
        self.state_guiding = false;
        self
    }

    /// Ablation: mutate every field rather than only the core fields.
    pub fn without_core_field_restriction(mut self) -> Self {
        self.core_fields_only = false;
        self
    }

    /// Ablation: do not append garbage tails.
    pub fn without_garbage(mut self) -> Self {
        self.append_garbage = false;
        self
    }

    /// Extension: also mutate Configuration Request options (ERTM/streaming
    /// retransmission modes with abnormal parameters) on BR/EDR links.
    pub fn with_config_option_mutation(mut self) -> Self {
        self.mutate_config_options = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper_technique() {
        let c = FuzzConfig::default();
        assert!(c.state_guiding);
        assert!(c.core_fields_only);
        assert!(c.append_garbage);
        assert!(c.generous_boundaries);
        assert!(c.stop_at_first_vulnerability);
        assert!(c.packets_per_command > 0);
        assert!(c.max_garbage_len > 0);
    }

    #[test]
    fn comparison_config_never_stops_early() {
        let c = FuzzConfig::comparison(100_000, 7);
        assert!(!c.stop_at_first_vulnerability);
        assert_eq!(c.max_packets, 100_000);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn ablation_builders_flip_exactly_one_switch() {
        let base = FuzzConfig::default();
        let a = base.clone().without_state_guiding();
        assert!(!a.state_guiding && a.core_fields_only && a.append_garbage);
        let b = base.clone().without_core_field_restriction();
        assert!(b.state_guiding && !b.core_fields_only && b.append_garbage);
        let c = base.clone().without_garbage();
        assert!(c.state_guiding && c.core_fields_only && !c.append_garbage);
    }
}
