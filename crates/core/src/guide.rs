//! Phase 2 — state guiding (§III-C).
//!
//! The state guide drives the target's per-channel state machine into each
//! initiator-reachable state using only *normal* packets built from the
//! commands valid for the state's job.  Once the target is parked in the
//! desired state the session hands over to the mutator for the actual test
//! packets.

use analysis::FuzzPlan;
use btcore::{Cid, Identifier, Psm};

use hci::medium::LinkHandle;
use l2cap::command::{
    Command, ConfigureRequest, ConfigureResponse, ConnectionRequest, CreateChannelRequest,
    CreditBasedReconfigureRequest, DisconnectionRequest, FlowControlCreditInd,
    LeCreditBasedConnectionRequest, MoveChannelRequest,
};
use l2cap::consts::{ConfigureResult, ConnectionResult};
use l2cap::options::ConfigOption;
use l2cap::packet::parse_signaling;
use l2cap::state::ChannelState;
use l2cap::CommandCode;
use serde::{Deserialize, Serialize};

use crate::retry::RetryPolicy;

/// The fuzzer-side view of one channel opened on the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelContext {
    /// Our (initiator) channel ID.
    pub scid: Cid,
    /// The channel ID the target allocated (`NULL` when no channel is open,
    /// e.g. when fuzzing the closed/connection jobs).
    pub dcid: Cid,
    /// The service port the channel was opened on.
    pub psm: Psm,
}

impl ChannelContext {
    /// A context with no open channel (closed-state fuzzing).
    pub fn closed(psm: Psm) -> Self {
        ChannelContext {
            scid: Cid::NULL,
            dcid: Cid::NULL,
            psm,
        }
    }

    /// Returns `true` if a channel is actually open on the target.
    pub fn has_channel(&self) -> bool {
        self.dcid != Cid::NULL
    }
}

/// Drives state transitions with valid commands.
#[derive(Debug)]
pub struct StateGuide {
    next_scid: u16,
    next_identifier: Identifier,
    transition_packets_sent: u64,
    retry: RetryPolicy,
}

impl Default for StateGuide {
    fn default() -> Self {
        StateGuide::new()
    }
}

impl StateGuide {
    /// Creates a guide; initiator CIDs are allocated from `0x0040` upward.
    pub fn new() -> Self {
        StateGuide {
            next_scid: 0x0040,
            next_identifier: Identifier::FIRST,
            transition_packets_sent: 0,
            retry: RetryPolicy::none(),
        }
    }

    /// Attaches a retry policy: channel-opening prelude commands whose
    /// response is lost are retried with virtual-time backoff, so a lossy
    /// link does not starve the mutator of reachable states.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Retries `attempt` per the guide's policy until it yields a value.
    /// With `RetryPolicy::none` this is exactly one attempt and no extra
    /// clock charge — the pre-resilience packet stream.
    fn with_attempts<T>(
        &mut self,
        link: &mut LinkHandle,
        mut attempt: impl FnMut(&mut Self, &mut LinkHandle) -> Option<T>,
    ) -> Option<T> {
        let mut result = attempt(self, link);
        let mut retries = 0;
        while result.is_none() && retries + 1 < self.retry.max_attempts {
            link.clock().advance_micros(self.retry.backoff_for(retries));
            result = attempt(self, link);
            retries += 1;
        }
        result
    }

    /// Number of normal (state-transition) packets this guide has sent.
    pub fn transition_packets_sent(&self) -> u64 {
        self.transition_packets_sent
    }

    /// Returns the next signalling identifier to use and advances it.
    pub fn next_identifier(&mut self) -> Identifier {
        let id = self.next_identifier;
        self.next_identifier = id.next();
        id
    }

    fn next_scid(&mut self) -> Cid {
        let cid = Cid(self.next_scid);
        self.next_scid = self.next_scid.wrapping_add(1).max(0x0040);
        cid
    }

    fn send(&mut self, link: &mut LinkHandle, command: Command) -> Vec<Command> {
        let id = self.next_identifier();
        self.transition_packets_sent += 1;
        link.send_frame(&l2cap::packet::signaling_frame_in(
            link.arena(),
            id,
            &command,
        ))
        .iter()
        .filter_map(|f| parse_signaling(f).ok().map(|p| p.command()))
        .collect()
    }

    /// Opens a channel on `psm`, via Connection Request or (for the creation
    /// job) Create Channel Request.  Returns the channel context on success.
    pub fn open_channel(
        &mut self,
        link: &mut LinkHandle,
        psm: Psm,
        via_create: bool,
    ) -> Option<ChannelContext> {
        let scid = self.next_scid();
        let command = if via_create {
            Command::CreateChannelRequest(CreateChannelRequest {
                psm,
                scid,
                controller_id: 0,
            })
        } else {
            Command::ConnectionRequest(ConnectionRequest { psm, scid })
        };
        let responses = self.send(link, command);
        for rsp in responses {
            let (dcid, result) = match rsp {
                Command::ConnectionResponse(r) => (r.dcid, r.result),
                Command::CreateChannelResponse(r) => (r.dcid, r.result),
                _ => continue,
            };
            if result == ConnectionResult::Success {
                return Some(ChannelContext { scid, dcid, psm });
            }
        }
        None
    }

    /// Sends our Configuration Request for the channel (the target answers
    /// and waits for the rest of the handshake).
    pub fn send_configure_request(&mut self, link: &mut LinkHandle, ctx: ChannelContext) {
        self.send(
            link,
            Command::ConfigureRequest(ConfigureRequest {
                dcid: ctx.dcid,
                flags: 0,
                options: vec![ConfigOption::Mtu(l2cap::packet::DEFAULT_SIGNALING_MTU)],
            }),
        );
    }

    /// Answers the target's own Configuration Request with a success
    /// response.
    pub fn send_configure_response(&mut self, link: &mut LinkHandle, ctx: ChannelContext) {
        self.send(
            link,
            Command::ConfigureResponse(ConfigureResponse {
                scid: ctx.dcid,
                flags: 0,
                result: ConfigureResult::Success,
                options: Vec::new(),
            }),
        );
    }

    /// Completes the configuration handshake in both directions so the
    /// target's channel reaches `OPEN`.
    pub fn complete_configuration(&mut self, link: &mut LinkHandle, ctx: ChannelContext) {
        self.send_configure_request(link, ctx);
        self.send_configure_response(link, ctx);
    }

    /// Sends a Move Channel Request, parking an AMP-capable target in the
    /// move-confirmation wait state.
    pub fn request_move(&mut self, link: &mut LinkHandle, ctx: ChannelContext) {
        self.send(
            link,
            Command::MoveChannelRequest(MoveChannelRequest {
                icid: ctx.scid,
                dest_controller_id: 1,
            }),
        );
    }

    /// Tears down the channel.
    pub fn disconnect(&mut self, link: &mut LinkHandle, ctx: ChannelContext) {
        if ctx.has_channel() {
            self.send(
                link,
                Command::DisconnectionRequest(DisconnectionRequest {
                    dcid: ctx.dcid,
                    scid: ctx.scid,
                }),
            );
        }
    }

    /// Opens an LE credit-based channel on `spsm` (command `0x14`) and
    /// returns the channel context on success.  The channel goes straight to
    /// `OPEN` — LE credit-based channels have no configuration handshake.
    pub fn open_le_channel(&mut self, link: &mut LinkHandle, spsm: Psm) -> Option<ChannelContext> {
        let scid = self.next_scid();
        let responses = self.send(
            link,
            Command::LeCreditBasedConnectionRequest(LeCreditBasedConnectionRequest {
                spsm: spsm.value(),
                scid,
                mtu: 247,
                mps: 64,
                initial_credits: 8,
            }),
        );
        for rsp in responses {
            if let Command::LeCreditBasedConnectionResponse(r) = rsp {
                if r.result == 0 {
                    return Some(ChannelContext {
                        scid,
                        dcid: r.dcid,
                        psm: spsm,
                    });
                }
            }
        }
        None
    }

    /// Grants the target additional credits on an open LE channel.
    pub fn send_credit_ind(&mut self, link: &mut LinkHandle, ctx: ChannelContext, credits: u16) {
        self.send(
            link,
            Command::FlowControlCreditInd(FlowControlCreditInd {
                cid: ctx.scid,
                credits,
            }),
        );
    }

    /// Renegotiates MTU/MPS on an open LE channel via the enhanced
    /// credit-based reconfigure, parking the target through `WAIT_CONFIG`.
    pub fn send_reconfigure(&mut self, link: &mut LinkHandle, ctx: ChannelContext) {
        self.send(
            link,
            Command::CreditBasedReconfigureRequest(CreditBasedReconfigureRequest {
                mtu: 512,
                mps: 128,
                dcids: vec![ctx.dcid],
            }),
        );
    }

    /// Executes one prelude command of a computed [`FuzzPlan`].
    ///
    /// Channel-opening commands allocate the context; every other command
    /// requires one.  Returns `Err(())` when an open fails (the caller
    /// decides whether closed-state fuzzing is an acceptable fallback).
    fn execute_command(
        &mut self,
        link: &mut LinkHandle,
        psm: Psm,
        ctx: &mut Option<ChannelContext>,
        code: CommandCode,
    ) -> Result<(), ()> {
        match code {
            CommandCode::ConnectionRequest => {
                *ctx = Some(
                    self.with_attempts(link, |g, l| g.open_channel(l, psm, false))
                        .ok_or(())?,
                );
            }
            CommandCode::CreateChannelRequest => {
                *ctx = Some(
                    self.with_attempts(link, |g, l| g.open_channel(l, psm, true))
                        .ok_or(())?,
                );
            }
            CommandCode::LeCreditBasedConnectionRequest => {
                *ctx = Some(
                    self.with_attempts(link, |g, l| g.open_le_channel(l, psm))
                        .ok_or(())?,
                );
            }
            CommandCode::ConfigureRequest => {
                let ctx = ctx.ok_or(())?;
                self.send_configure_request(link, ctx);
            }
            CommandCode::ConfigureResponse => {
                let ctx = ctx.ok_or(())?;
                self.send_configure_response(link, ctx);
            }
            CommandCode::MoveChannelRequest => {
                let ctx = ctx.ok_or(())?;
                self.request_move(link, ctx);
            }
            CommandCode::DisconnectionRequest => {
                let ctx = ctx.ok_or(())?;
                self.disconnect(link, ctx);
            }
            CommandCode::CreditBasedReconfigureRequest => {
                let ctx = ctx.ok_or(())?;
                self.send_reconfigure(link, ctx);
            }
            // validate_plan proves every prelude command is guide-sendable,
            // so the remaining codes never appear in a computed plan.
            other => {
                debug_assert!(false, "non-sendable command {other:?} in a fuzz plan");
                return Err(());
            }
        }
        Ok(())
    }

    /// Executes a computed fuzz plan: replays its prelude command-for-command
    /// and returns the context the mutator should fuzz with.
    ///
    /// A plan that parks the target closed tolerates open failures (the
    /// closed context is the goal anyway); a plan that parks on a live
    /// channel propagates them as `None`.
    fn execute_plan(
        &mut self,
        link: &mut LinkHandle,
        psm: Psm,
        plan: &FuzzPlan,
    ) -> Option<ChannelContext> {
        let mut ctx: Option<ChannelContext> = None;
        for &code in &plan.prelude {
            if self.execute_command(link, psm, &mut ctx, code).is_err() {
                return plan.parks_closed().then(|| ChannelContext::closed(psm));
            }
        }
        if plan.parks_closed() {
            Some(ChannelContext::closed(psm))
        } else {
            ctx
        }
    }

    /// The LE counterpart of [`StateGuide::drive_to`]: drives the target's
    /// LE-U channel toward `state` using the credit-based flows.
    ///
    /// `CLOSED` and `WAIT_CONNECT` fuzz without a channel, `WAIT_CONFIG` is
    /// passed through by a reconfigure on an open channel, `OPEN` and
    /// `WAIT_DISCONNECT` fuzz from an open channel.  States that do not
    /// exist on an LE link return `None`.
    pub fn drive_to_le(
        &mut self,
        link: &mut LinkHandle,
        spsm: Psm,
        state: ChannelState,
    ) -> Option<ChannelContext> {
        let plan = analysis::fuzz_plan(state, btcore::LinkType::Le)?;
        self.execute_plan(link, spsm, plan)
    }

    /// Drives the target into `state` on a fresh channel over `psm` and
    /// returns the channel context to fuzz with.
    ///
    /// The command sequence is not hand-written: it executes the
    /// [`FuzzPlan`] the `analysis` crate derived from the minimal witness
    /// the model checker computed for `state` (states the target only
    /// passes through transiently are fuzzed from the nearest parkable
    /// position the plan records).  Responder-only states have no plan and
    /// return `None`.
    pub fn drive_to(
        &mut self,
        link: &mut LinkHandle,
        psm: Psm,
        state: ChannelState,
    ) -> Option<ChannelContext> {
        let plan = analysis::fuzz_plan(state, btcore::LinkType::BrEdr)?;
        self.execute_plan(link, psm, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::{FuzzRng, SimClock};
    use btstack::device::share;
    use btstack::profiles::{DeviceProfile, ProfileId};
    use hci::link::LinkConfig;
    use hci::medium::{EventMedium, Medium};

    fn link_to(id: ProfileId) -> (btstack::device::SharedSimulatedDevice, LinkHandle) {
        let clock = SimClock::new();
        let mut air = EventMedium::new(clock.clone());
        let profile = DeviceProfile::table5(id);
        let (shared, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(5)));
        air.register_shared(adapter);
        let link = air
            .connect(profile.addr, LinkConfig::ideal(), FuzzRng::seed_from(6))
            .unwrap();
        (shared, link)
    }

    #[test]
    fn open_channel_captures_the_allocated_dcid() {
        let (_dev, mut link) = link_to(ProfileId::D2);
        let mut guide = StateGuide::new();
        let ctx = guide
            .open_channel(&mut link, Psm::SDP, false)
            .expect("SDP connect must work");
        assert!(ctx.has_channel());
        assert!(ctx.dcid.is_dynamic());
        assert_eq!(ctx.psm, Psm::SDP);
        assert!(guide.transition_packets_sent() >= 1);
    }

    #[test]
    fn drive_to_open_reaches_open_on_the_target() {
        let (dev, mut link) = link_to(ProfileId::D2);
        let mut guide = StateGuide::new();
        let ctx = guide
            .drive_to(&mut link, Psm::SDP, ChannelState::Open)
            .unwrap();
        assert!(ctx.has_channel());
        // White-box check against the simulated stack.
        let visited = dev.lock().fired_vulnerabilities().len();
        assert_eq!(visited, 0);
    }

    #[test]
    fn drive_to_move_states_works_on_amp_capable_targets() {
        let (_dev, mut link) = link_to(ProfileId::D2);
        let mut guide = StateGuide::new();
        let ctx = guide.drive_to(&mut link, Psm::SDP, ChannelState::WaitMoveConfirm);
        assert!(ctx.is_some());
    }

    #[test]
    fn responder_only_states_are_not_drivable() {
        let (_dev, mut link) = link_to(ProfileId::D2);
        let mut guide = StateGuide::new();
        assert!(guide
            .drive_to(&mut link, Psm::SDP, ChannelState::WaitConnectRsp)
            .is_none());
        assert!(guide
            .drive_to(&mut link, Psm::SDP, ChannelState::WaitFinalRsp)
            .is_none());
    }

    #[test]
    fn closed_and_connection_jobs_fuzz_without_a_channel() {
        let (_dev, mut link) = link_to(ProfileId::D5);
        let mut guide = StateGuide::new();
        let ctx = guide
            .drive_to(&mut link, Psm::SDP, ChannelState::Closed)
            .unwrap();
        assert!(!ctx.has_channel());
        let ctx = guide
            .drive_to(&mut link, Psm::SDP, ChannelState::WaitConnect)
            .unwrap();
        assert!(!ctx.has_channel());
    }

    #[test]
    fn lossy_opens_are_retried_with_backoff() {
        use hci::fault::FaultPlan;
        // Total loss: the open can never succeed, so the guide must spend
        // exactly `max_attempts` connection requests before giving up.
        let clock = SimClock::new();
        let mut air = EventMedium::new(clock.clone());
        let profile = DeviceProfile::table5(ProfileId::D2);
        let (_shared, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(5)));
        air.register_shared(adapter);
        let config = LinkConfig::ideal().with_faults(FaultPlan::none().with_loss(1.0));
        let mut link = air
            .connect(profile.addr, config, FuzzRng::seed_from(6))
            .unwrap();
        let mut guide = StateGuide::new().with_retry(RetryPolicy::flat(3, 1_000));
        let before = link.clock().now_micros();
        let ctx = guide.drive_to(&mut link, Psm::SDP, ChannelState::Open);
        assert!(ctx.is_none());
        assert_eq!(guide.transition_packets_sent(), 3);
        assert!(link.clock().now_micros() >= before + 2_000);
    }

    #[test]
    fn identifiers_advance_and_skip_zero() {
        let mut guide = StateGuide::new();
        let mut last = 0u8;
        for _ in 0..300 {
            let id = guide.next_identifier();
            assert!(id.is_valid());
            last = id.value();
        }
        assert_ne!(last, 0);
    }
}
