//! Phase 3 — core field mutating (§III-D, Algorithm 1, Fig. 7).
//!
//! For each command valid in the current state, the mutator builds packets
//! whose *fixed* and *dependent* fields are kept intact, whose *mutable
//! application* fields keep their default values, and whose *mutable core*
//! fields are replaced: PSM values are drawn from the abnormal ranges of
//! Table IV, channel-ID-in-payload values from the normal dynamic range while
//! deliberately ignoring what the target allocated.  Finally a bounded
//! garbage tail is appended without updating the dependent length fields —
//! exactly the mutation of the paper's Fig. 7 example.

use btcore::{FrameArena, FuzzRng, Identifier, LinkType};
use l2cap::code::CommandCode;
use l2cap::fields::{self, FieldClass, FieldName};
use l2cap::packet::SignalingPacket;
use l2cap::ranges;

use crate::guide::ChannelContext;

/// The core-field mutator.
///
/// Packets are mutated in place inside buffers checked out of the mutator's
/// [`FrameArena`]: once a generated packet has been transmitted and dropped,
/// its buffer returns to the arena and backs a later mutation, so a
/// steady-state campaign performs no per-packet backing-store allocation
/// here.
#[derive(Debug)]
pub struct CoreFieldMutator {
    rng: FuzzRng,
    arena: FrameArena,
    core_fields_only: bool,
    append_garbage: bool,
    max_garbage_len: usize,
    /// The transport the generated packets target.  On an LE link the
    /// credit-based channel fields (SPSM, MTU/MPS, credits) become the
    /// mutation surface alongside the core CIDP fields; on BR/EDR they stay
    /// at defaults, exactly as the paper's technique prescribes.
    link: LinkType,
    /// When set (BR/EDR only), Configuration Requests additionally carry a
    /// retransmission-and-flow-control option selecting ERTM or streaming
    /// mode with abnormal parameters.
    mutate_config_options: bool,
}

impl CoreFieldMutator {
    /// Creates a mutator following the paper's technique (BR/EDR link).
    pub fn new(rng: FuzzRng) -> Self {
        CoreFieldMutator {
            rng,
            arena: FrameArena::new(),
            core_fields_only: true,
            append_garbage: true,
            max_garbage_len: 16,
            link: LinkType::BrEdr,
            mutate_config_options: false,
        }
    }

    /// Creates a mutator with explicit ablation switches (see
    /// [`crate::config::FuzzConfig`]).
    pub fn with_options(
        rng: FuzzRng,
        core_fields_only: bool,
        append_garbage: bool,
        max_garbage_len: usize,
    ) -> Self {
        CoreFieldMutator {
            core_fields_only,
            append_garbage,
            max_garbage_len,
            ..CoreFieldMutator::new(rng)
        }
    }

    /// Sets the transport the generated packets target.
    pub fn set_link(&mut self, link: LinkType) {
        self.link = link;
    }

    /// Enables ERTM/streaming-mode option mutation on Configuration
    /// Requests (BR/EDR links only; a no-op on LE where the command does
    /// not exist).
    pub fn set_config_option_mutation(&mut self, enabled: bool) {
        self.mutate_config_options = enabled;
    }

    /// The arena recycling this mutator's packet buffers.
    pub fn arena(&self) -> &FrameArena {
        &self.arena
    }

    /// Builds one malformed packet for `code` in the given channel context
    /// (Algorithm 1, inner loop body).
    pub fn mutate(
        &mut self,
        code: CommandCode,
        ctx: &ChannelContext,
        identifier: Identifier,
    ) -> SignalingPacket {
        let spec_len = fields::min_data_len(code);
        // The packet is mutated in place inside one arena buffer holding the
        // full C-frame: four (initially zero) header bytes patched at the
        // end, then the data fields.  Keeping the wire form contiguous lets
        // `to_frame` later re-frame the packet without copying a byte.
        // Checked-out buffers come back cleared, so this resize zero-fills.
        let mut buf = self.arena.checkout();
        buf.resize(4 + spec_len, 0);
        {
            let data = &mut buf[4..];
            for spec in fields::data_field_layout(code) {
                let Some(width) = spec.len else { continue };
                if spec.offset + width > data.len() {
                    continue;
                }
                match spec.class() {
                    FieldClass::MutableCore => {
                        // PSM <- random(abnormal); CIDP <- random(normal
                        // range), ignoring the dynamically allocated value.
                        let value = if spec.name == FieldName::Psm {
                            ranges::random_abnormal_psm(&mut self.rng)
                        } else {
                            ranges::random_cidp(&mut self.rng)
                        };
                        write_field(data, spec.offset, width, value);
                    }
                    FieldClass::MutableApp => {
                        if self.link.is_le() && width == 2 {
                            // On an LE link the credit-based channel fields
                            // are the interesting mutation surface: SPSM
                            // from outside the defined space, credits from
                            // the zero-stall/overflow classes, MTU/MPS below
                            // the 23-octet minimum.  Other MA fields keep
                            // their defaults.
                            let value = match spec.name {
                                FieldName::Spsm => {
                                    Some(ranges::random_abnormal_spsm(&mut self.rng))
                                }
                                FieldName::Credit => {
                                    Some(ranges::random_abnormal_credits(&mut self.rng))
                                }
                                FieldName::Mtu | FieldName::Mps => {
                                    Some(ranges::random_abnormal_le_mtu(&mut self.rng))
                                }
                                _ => None,
                            };
                            if let Some(value) = value {
                                write_field(data, spec.offset, width, value);
                            } else if !self.core_fields_only {
                                let value = self.rng.next_u16();
                                write_field(data, spec.offset, width, value);
                            }
                        } else if self.core_fields_only {
                            // MA fields keep their default values (zeros
                            // encode "success"/"no flags"/"no info").
                        } else {
                            // Ablation: dumb mutation of application fields
                            // too.
                            let value = self.rng.next_u16();
                            write_field(data, spec.offset, width, value);
                        }
                    }
                    FieldClass::Fixed | FieldClass::Dependent => {
                        // Never mutated: fixed fields keep their constants
                        // and dependent fields are derived below.
                    }
                }
            }
            // Keep the remote channel plausible when the command addresses
            // an open channel and the context has one: half of the packets
            // reuse the real DCID so deeper handling is reached, the other
            // half keep the random value (ignoring allocation), mirroring
            // the paper's "normal range while ignoring dynamic allocation".
            if ctx.has_channel() && self.rng.chance(0.5) {
                if let Some(spec) = fields::cidp_fields(code).next() {
                    if let Some(width) = spec.len {
                        write_field(data, spec.offset, width, ctx.dcid.value());
                    }
                }
            }
        }

        // ERTM/streaming-mode option mutation: a Configuration Request on a
        // classic link additionally carries a retransmission-and-flow-control
        // option whose mode selects ERTM (3) or streaming (4) with a zero
        // transmit window and a zero MPS — the abnormal parameter classes
        // real retransmission engines choke on.  The declared length covers
        // the option, so the packet stays length-consistent and survives
        // strict stacks' sanity filters.
        if self.mutate_config_options && !self.link.is_le() && code == CommandCode::ConfigureRequest
        {
            let mode = if self.rng.chance(0.5) { 3 } else { 4 };
            let retransmission_timeout = self.rng.next_u16();
            let monitor_timeout = self.rng.next_u16();
            buf.extend_from_slice(&[0x04, 0x09, mode, 0x00, 0x01]);
            buf.extend_from_slice(&retransmission_timeout.to_le_bytes());
            buf.extend_from_slice(&monitor_timeout.to_le_bytes());
            buf.extend_from_slice(&0u16.to_le_bytes());
        }

        let spec_declared_len = (buf.len() - 4) as u16;
        if self.append_garbage && self.max_garbage_len > 0 {
            let garbage_len = self.rng.range_usize(1, self.max_garbage_len);
            // Fill the tail in place instead of materializing a temporary
            // `Vec<u8>` per packet (this is the mutation hot path).
            let start = buf.len();
            buf.resize(start + garbage_len, 0);
            self.rng.fill_bytes(&mut buf[start..]);
        }
        let declared_data_len = if self.core_fields_only {
            spec_declared_len
        } else {
            // Ablation: dumb mutation also corrupts the dependent length
            // field, which conforming stacks answer with "command not
            // understood".
            self.rng.next_u16()
        };

        // Patch the C-frame header so the buffer holds the complete wire
        // form; the packet's data field is a zero-copy view past it.
        buf[0] = code.value();
        buf[1] = identifier.value();
        buf[2..4].copy_from_slice(&declared_data_len.to_le_bytes());
        SignalingPacket {
            identifier,
            code: code.value(),
            declared_data_len,
            data: buf.freeze().slice(4..),
        }
    }

    /// Generates `n` malformed packets for every command in `commands`
    /// (Algorithm 1), using `identifiers` starting at `first_identifier`.
    pub fn generate(
        &mut self,
        commands: &[CommandCode],
        n: usize,
        ctx: &ChannelContext,
        mut identifier: Identifier,
    ) -> Vec<SignalingPacket> {
        let mut out = Vec::with_capacity(commands.len() * n);
        for code in commands {
            for _ in 0..n {
                out.push(self.mutate(*code, ctx, identifier));
                identifier = identifier.next();
            }
        }
        out
    }

    /// Corpus replay: re-sends a retained packet's wire form (the
    /// `code, identifier, length, data` layout of
    /// [`SignalingPacket::to_bytes`]) with every mutable-core field drawn
    /// afresh.  Application fields, option tails and the garbage bytes of
    /// the retained packet are preserved — the parts that earned the packet
    /// its place in the corpus — while the PSM/CIDP surface is re-randomized
    /// exactly as [`CoreFieldMutator::mutate`] would.
    pub fn resend_with_field_mutation(
        &mut self,
        wire: &[u8],
        ctx: &ChannelContext,
        identifier: Identifier,
    ) -> SignalingPacket {
        let mut buf = self.arena.checkout();
        buf.extend_from_slice(wire);
        if buf.len() < 4 {
            buf.resize(4, 0);
        }
        if let Some(code) = CommandCode::from_u8(buf[0]) {
            let data = &mut buf[4..];
            for spec in fields::data_field_layout(code) {
                let Some(width) = spec.len else { continue };
                if spec.offset + width > data.len() {
                    continue;
                }
                if spec.class() == FieldClass::MutableCore {
                    let value = if spec.name == FieldName::Psm {
                        ranges::random_abnormal_psm(&mut self.rng)
                    } else {
                        ranges::random_cidp(&mut self.rng)
                    };
                    write_field(data, spec.offset, width, value);
                }
            }
            // Same plausible-channel rule as `mutate`: half the resends aim
            // at the channel the guide actually opened.
            if ctx.has_channel() && self.rng.chance(0.5) {
                if let Some(spec) = fields::cidp_fields(code).next() {
                    if let Some(width) = spec.len {
                        if spec.offset + width <= data.len() {
                            write_field(data, spec.offset, width, ctx.dcid.value());
                        }
                    }
                }
            }
        }
        self.finish_wire(buf, identifier)
    }

    /// Corpus havoc: stacks one to three structure-blind edits (corrupt a
    /// data byte, truncate the tail, extend with fresh garbage) onto a
    /// retained packet's wire form.  The declared length bytes are left as
    /// retained, so edits that change the physical length produce the
    /// length-inconsistent shapes real parsers trip over.
    pub fn havoc(&mut self, wire: &[u8], identifier: Identifier) -> SignalingPacket {
        let mut buf = self.arena.checkout();
        buf.extend_from_slice(wire);
        if buf.len() < 4 {
            buf.resize(4, 0);
        }
        let edits = self.rng.range_usize(1, 3);
        for _ in 0..edits {
            match self.rng.range_usize(0, 2) {
                0 if buf.len() > 4 => {
                    let pos = self.rng.range_usize(4, buf.len() - 1);
                    let flip = self.rng.next_u8();
                    buf[pos] ^= flip;
                }
                1 if buf.len() > 5 => {
                    let keep = self.rng.range_usize(5, buf.len() - 1);
                    buf.truncate(keep);
                }
                _ => {
                    let extra = self.rng.range_usize(1, self.max_garbage_len.max(1));
                    let start = buf.len();
                    buf.resize(start + extra, 0);
                    self.rng.fill_bytes(&mut buf[start..]);
                }
            }
        }
        self.finish_wire(buf, identifier)
    }

    /// Corpus splice: the head of `a`'s data glued to the tail of `b`'s
    /// data, under `a`'s command code and declared length.  Crossing over
    /// two packets that each reached something keeps both halves'
    /// interesting bytes in play.
    pub fn splice(&mut self, a: &[u8], b: &[u8], identifier: Identifier) -> SignalingPacket {
        let mut buf = self.arena.checkout();
        buf.extend_from_slice(&a[..a.len().min(4)]);
        if buf.len() < 4 {
            buf.resize(4, 0);
        }
        let data_a = if a.len() > 4 { &a[4..] } else { &[][..] };
        let data_b = if b.len() > 4 { &b[4..] } else { &[][..] };
        let cut_a = self.rng.range_usize(0, data_a.len());
        let cut_b = self.rng.range_usize(0, data_b.len());
        buf.extend_from_slice(&data_a[..cut_a]);
        buf.extend_from_slice(&data_b[cut_b..]);
        self.finish_wire(buf, identifier)
    }

    /// Stamps the fresh identifier into a rebuilt wire buffer and freezes it
    /// into a packet (the shared tail of the three corpus operators).
    fn finish_wire(
        &mut self,
        mut buf: btcore::FrameBufMut,
        identifier: Identifier,
    ) -> SignalingPacket {
        buf[1] = identifier.value();
        let code = buf[0];
        let declared_data_len = u16::from_le_bytes([buf[2], buf[3]]);
        SignalingPacket {
            identifier,
            code,
            declared_data_len,
            data: buf.freeze().slice(4..),
        }
    }

    /// Reproduces the paper's Fig. 7 worked example: the original, well-formed
    /// Configure Request and the mutated packet with DCID forced to `0x7B8F`
    /// and the garbage tail `D2 3A 91 0E`.
    pub fn fig7_example() -> (SignalingPacket, SignalingPacket) {
        let original = SignalingPacket {
            identifier: Identifier(0x06),
            code: CommandCode::ConfigureRequest.value(),
            declared_data_len: 0x0008,
            data: vec![0x40, 0x00, 0x00, 0x20, 0x01, 0x02, 0x00, 0x04].into(),
        };
        let mutated = SignalingPacket {
            identifier: Identifier(0x06),
            code: CommandCode::ConfigureRequest.value(),
            declared_data_len: 0x0008,
            data: vec![
                0x8F, 0x7B, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD2, 0x3A, 0x91, 0x0E,
            ]
            .into(),
        };
        (original, mutated)
    }
}

fn write_field(data: &mut [u8], offset: usize, width: usize, value: u16) {
    if width == 1 {
        data[offset] = value as u8;
    } else {
        let bytes = value.to_le_bytes();
        data[offset] = bytes[0];
        data[offset + 1] = bytes[1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::codec::hex_dump;
    use btcore::{Cid, Psm};
    use l2cap::command::Command;
    use l2cap::jobs::Job;

    fn mutator() -> CoreFieldMutator {
        CoreFieldMutator::new(FuzzRng::seed_from(42))
    }

    fn ctx_with_channel() -> ChannelContext {
        ChannelContext {
            scid: Cid(0x0040),
            dcid: Cid(0x0041),
            psm: Psm::SDP,
        }
    }

    #[test]
    fn mutated_connection_request_has_abnormal_psm_and_garbage() {
        let mut m = mutator();
        for i in 0..200u8 {
            let pkt = m.mutate(
                CommandCode::ConnectionRequest,
                &ChannelContext::closed(Psm::SDP),
                Identifier(i.max(1)),
            );
            assert_eq!(pkt.code, 0x02);
            let core = fields::extract_core_values(CommandCode::ConnectionRequest, &pkt.data);
            assert!(ranges::is_abnormal_psm(core.psm.unwrap()));
            assert!(core.cidp.iter().all(|c| ranges::is_cidp_range(*c)));
            assert!(pkt.garbage_len() > 0, "garbage must be appended");
            assert!(pkt.garbage_len() <= 16);
            // Dependent fields are preserved: declared length = spec length.
            assert_eq!(pkt.declared_data_len, 4);
        }
    }

    #[test]
    fn mutated_packets_are_classified_as_malformed() {
        let mut m = mutator();
        for code in Job::Configuration.valid_commands() {
            let pkt = m.mutate(code, &ctx_with_channel(), Identifier(1));
            assert!(
                sniffer_is_malformed(&pkt),
                "{code} mutation must look malformed"
            );
        }
    }

    // Minimal local re-implementation of the sniffer's notion of malformed
    // (garbage, abnormal PSM or broken structure) to avoid a circular
    // dev-dependency.
    fn sniffer_is_malformed(pkt: &SignalingPacket) -> bool {
        if pkt.garbage_len() > 0 || !pkt.is_length_consistent() {
            return true;
        }
        let Some(code) = CommandCode::from_u8(pkt.code) else {
            return true;
        };
        let core = fields::extract_core_values(code, &pkt.data);
        core.psm.map(ranges::is_abnormal_psm).unwrap_or(false)
            || matches!(pkt.command(), Command::Raw { .. })
    }

    #[test]
    fn application_fields_keep_defaults_in_core_only_mode() {
        let mut m = mutator();
        let pkt = m.mutate(
            CommandCode::ConnectionResponse,
            &ChannelContext::closed(Psm::SDP),
            Identifier(1),
        );
        // Result and status (offsets 4..8) stay at default zero.
        assert_eq!(&pkt.data[4..8], &[0, 0, 0, 0]);
    }

    #[test]
    fn dumb_mutation_corrupts_dependent_fields() {
        let mut m = CoreFieldMutator::with_options(FuzzRng::seed_from(1), false, true, 8);
        let mut saw_wrong_len = false;
        for i in 1..=50u8 {
            let pkt = m.mutate(
                CommandCode::ConnectionRequest,
                &ChannelContext::closed(Psm::SDP),
                Identifier(i),
            );
            if usize::from(pkt.declared_data_len) != 4 {
                saw_wrong_len = true;
            }
        }
        assert!(
            saw_wrong_len,
            "dumb mutation must corrupt the DATA LEN field"
        );
    }

    #[test]
    fn no_garbage_when_disabled() {
        let mut m = CoreFieldMutator::with_options(FuzzRng::seed_from(1), true, false, 16);
        let pkt = m.mutate(
            CommandCode::ConnectionRequest,
            &ChannelContext::closed(Psm::SDP),
            Identifier(1),
        );
        assert_eq!(pkt.garbage_len(), 0);
        assert!(pkt.is_length_consistent());
    }

    #[test]
    fn generate_produces_n_packets_per_command() {
        let mut m = mutator();
        let cmds = Job::Move.valid_commands();
        let packets = m.generate(&cmds, 5, &ctx_with_channel(), Identifier(1));
        assert_eq!(packets.len(), cmds.len() * 5);
        // Identifiers are all valid and advance.
        assert!(packets.iter().all(|p| p.identifier.is_valid()));
    }

    #[test]
    fn some_config_mutations_reuse_the_real_dcid() {
        let mut m = mutator();
        let ctx = ctx_with_channel();
        let packets = m.generate(&[CommandCode::ConfigureRequest], 64, &ctx, Identifier(1));
        let reused = packets
            .iter()
            .filter(|p| {
                fields::extract_core_values(CommandCode::ConfigureRequest, &p.data)
                    .cidp
                    .contains(&ctx.dcid.value())
            })
            .count();
        assert!(
            reused > 0,
            "some packets should target the allocated channel"
        );
        assert!(reused < 64, "some packets should ignore the allocation");
    }

    #[test]
    fn le_mutation_draws_the_credit_based_fields_from_the_abnormal_ranges() {
        let mut m = mutator();
        m.set_link(btcore::LinkType::Le);
        for i in 0..200u8 {
            let pkt = m.mutate(
                CommandCode::LeCreditBasedConnectionRequest,
                &ChannelContext::closed(Psm::EATT),
                Identifier(i.max(1)),
            );
            let le =
                fields::extract_le_values(CommandCode::LeCreditBasedConnectionRequest, &pkt.data);
            assert!(ranges::is_abnormal_spsm(le.spsm.unwrap()));
            assert!(ranges::is_abnormal_credits(le.credits.unwrap()));
            assert!(ranges::is_abnormal_le_mtu(le.mtu.unwrap()));
            assert!(ranges::is_abnormal_le_mtu(le.mps.unwrap()));
            // The CIDP field is still mutated like any core field.
            let core =
                fields::extract_core_values(CommandCode::LeCreditBasedConnectionRequest, &pkt.data);
            assert!(core.cidp.iter().all(|c| ranges::is_cidp_range(*c)));
            assert!(pkt.garbage_len() > 0);
        }
    }

    #[test]
    fn bredr_mutation_of_le_commands_leaves_application_fields_at_defaults() {
        // On a classic link the LE credit fields are plain MA fields and must
        // stay zero, byte-identical to the pre-link-aware mutator.
        let mut m = mutator();
        let pkt = m.mutate(
            CommandCode::LeCreditBasedConnectionRequest,
            &ChannelContext::closed(Psm::SDP),
            Identifier(1),
        );
        // SPSM (0..2), MTU (4..6), MPS (6..8), credits (8..10) all default.
        assert_eq!(&pkt.data[0..2], &[0, 0]);
        assert_eq!(&pkt.data[4..10], &[0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn config_option_mutation_appends_an_abnormal_ertm_option() {
        use l2cap::options::ConfigOption;
        let mut m = mutator();
        m.set_config_option_mutation(true);
        let mut saw_ertm = false;
        let mut saw_streaming = false;
        for i in 1..=64u8 {
            let pkt = m.mutate(
                CommandCode::ConfigureRequest,
                &ctx_with_channel(),
                Identifier(i),
            );
            let rfc = ConfigOption::scan_rfc_option(&pkt.data[4..])
                .expect("mutated config request must carry an RFC option");
            assert!(matches!(rfc.mode, 3 | 4), "mode must be ERTM or streaming");
            assert_eq!(rfc.tx_window, 0, "transmit window must be abnormal");
            assert_eq!(rfc.mps, 0, "MPS must be abnormal");
            saw_ertm |= rfc.mode == 3;
            saw_streaming |= rfc.mode == 4;
        }
        assert!(saw_ertm && saw_streaming, "both modes must be drawn");
        // Disabled (the default), no option is appended.
        let mut m = mutator();
        let pkt = m.mutate(
            CommandCode::ConfigureRequest,
            &ctx_with_channel(),
            Identifier(1),
        );
        assert_eq!(ConfigOption::scan_rfc_option(&pkt.data[4..]), None);
    }

    #[test]
    fn fig7_example_matches_the_paper_bytes() {
        let (original, mutated) = CoreFieldMutator::fig7_example();
        assert_eq!(
            hex_dump(&original.into_frame().to_bytes()),
            "0C 00 01 00 04 06 08 00 40 00 00 20 01 02 00 04"
        );
        // The mutation leaves the dependent PAYLOAD LEN field untouched as
        // well, so the on-air frame keeps declaring 12 payload bytes.
        let mutated_frame = l2cap::packet::L2capFrame {
            declared_payload_len: 0x000C,
            cid: Cid::SIGNALING,
            payload: mutated.to_bytes().into(),
        };
        assert_eq!(
            hex_dump(&mutated_frame.to_bytes()),
            "0C 00 01 00 04 06 08 00 8F 7B 00 00 00 00 00 00 D2 3A 91 0E"
        );
        assert_eq!(mutated.garbage_len(), 4);
    }
}
