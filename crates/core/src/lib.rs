//! L2Fuzz: a stateful fuzzer for the Bluetooth L2CAP layer.
//!
//! This crate is the paper's primary contribution, reproduced against the
//! simulated substrate of the `hci`/`btstack` crates.  The workflow follows
//! Fig. 5 of the paper:
//!
//! 1. **Target scanning** ([`scanner`]) — discover the device, enumerate its
//!    service ports and pick one that does not require pairing (falling back
//!    to SDP).
//! 2. **State guiding** ([`guide`]) — drive the target's channel state
//!    machine into each reachable state using only commands that are valid
//!    for the state's job (Tables I and III).
//! 3. **Core field mutating** ([`mutator`]) — generate malformed packets that
//!    mutate only the mutable-core fields (PSM from the abnormal ranges of
//!    Table IV, CIDP from the dynamic range ignoring allocation) and append a
//!    bounded garbage tail, keeping every other field valid (Algorithm 1).
//! 4. **Vulnerability detecting** ([`detector`]) — watch the target's
//!    responses for connection errors, ping it with L2CAP echo requests and
//!    collect crash dumps through the out-of-band oracle.
//!
//! [`session::L2FuzzSession`] ties the four phases together and produces a
//! [`report::FuzzReport`]; the [`fuzzer::Fuzzer`] trait is the common
//! interface shared with the baseline fuzzers for the comparison experiments.
//!
//! # Quickstart
//!
//! The crate-level test suite and the `quickstart` workspace example show the
//! full wiring; in short:
//!
//! ```text
//! build a simulated device  ->  register it on the AirMedium
//! connect an AclLink        ->  L2FuzzSession::new(config, clock).run(link, meta, oracle)
//! inspect the FuzzReport    ->  findings, elapsed time, states tested
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod detector;
pub mod fuzzer;
pub mod guide;
pub mod mutator;
pub mod queue;
pub mod report;
pub mod scanner;
pub mod session;

pub use config::FuzzConfig;
pub use fuzzer::Fuzzer;
pub use report::{FuzzReport, VulnerabilityFinding};
pub use session::L2FuzzSession;
