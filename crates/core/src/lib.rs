//! L2Fuzz: a stateful fuzzer for the Bluetooth L2CAP layer.
//!
//! This crate is the paper's primary contribution, reproduced against the
//! simulated substrate of the `hci`/`btstack` crates.  The workflow follows
//! Fig. 5 of the paper:
//!
//! 1. **Target scanning** ([`scanner`]) — discover the device, enumerate its
//!    service ports and pick one that does not require pairing (falling back
//!    to SDP).
//! 2. **State guiding** ([`guide`]) — drive the target's channel state
//!    machine into each reachable state using only commands that are valid
//!    for the state's job (Tables I and III).
//! 3. **Core field mutating** ([`mutator`]) — generate malformed packets that
//!    mutate only the mutable-core fields (PSM from the abnormal ranges of
//!    Table IV, CIDP from the dynamic range ignoring allocation) and append a
//!    bounded garbage tail, keeping every other field valid (Algorithm 1).
//! 4. **Vulnerability detecting** ([`detector`]) — watch the target's
//!    responses for connection errors, ping it with L2CAP echo requests and
//!    collect crash dumps through the out-of-band oracle.
//!
//! [`session::L2FuzzSession`] ties the four phases together and produces a
//! [`report::FuzzReport`]; the [`campaign`] module is the single entry point
//! that wires sessions (and the baseline tools, via the [`fuzzer::Fuzzer`]
//! trait) to simulated targets.
//!
//! # Quickstart
//!
//! ```
//! use btstack::profiles::{DeviceProfile, ProfileId};
//! use l2fuzz::campaign::Campaign;
//!
//! // Fuzz the simulated Pixel 3 (device D2 of Table V) with L2Fuzz.  The
//! // builder wires the virtual air, the device, the link, the packet tap
//! // and the out-of-band oracle; the default tool is one L2Fuzz detection
//! // session with the paper's configuration.
//! let outcome = Campaign::builder()
//!     .target(DeviceProfile::table5(ProfileId::D2))
//!     .seed(11)
//!     .run()
//!     .expect("campaign runs");
//!
//! // Inspect the per-target outcome: report, trace, elapsed time, device.
//! let target = outcome.into_single();
//! assert!(target.report.vulnerable());
//! assert!(target.report.packets_sent > 0);
//! assert!(!target.report.states_tested.is_empty());
//! assert!(!target.trace.is_empty());
//! ```
//!
//! Multi-device experiments add more [`campaign::CampaignBuilder::target`]s
//! and, to spread them across worker threads, a
//! [`campaign::ShardedExecutor`] — per-target results are bit-for-bit
//! identical at any thread count because every target runs in an isolated
//! environment seeded from the campaign seed.  Within one target,
//! [`campaign::CampaignBuilder::initiators_per_target`] runs several
//! concurrent initiators over the event-driven medium (and
//! [`campaign::CampaignBuilder::dual_transport`] splits them across BR/EDR
//! and LE on a dual-mode device); [`campaign::SeedSweepExecutor`] runs one
//! campaign per sweep seed per target.  All of it replays bit-for-bit from
//! the campaign seed.
//!
//! # Migrating from `L2FuzzSession::run`
//!
//! Code written before the campaign API built a medium, registered a
//! device, connected a link, attached a tap and called
//! [`session::L2FuzzSession::run`] by hand.  That wiring now lives behind
//! [`campaign::Campaign::builder`]:
//!
//! * `EventMedium::new` (née `AirMedium::new`) + `register` + `connect` +
//!   `new_tap` → `.target(profile)` (the builder creates an isolated
//!   clock, medium, link and tap per target).
//! * `L2FuzzSession::new(config, clock).run(&mut link, meta, Some(&mut
//!   oracle))` → `.fuzzer(|| Box::new(L2FuzzTool::detection(config, rounds)))`
//!   plus `.oracle(OraclePolicy::OutOfBand)` (the default); the report comes
//!   back in [`campaign::TargetOutcome::report`].
//! * A raw packet budget (`Fuzzer::fuzz(&mut link, max_packets)`) →
//!   `.budget(TxBudget::packets(n))`; the budget now reaches every tool
//!   through [`fuzzer::FuzzCtx`].
//! * Hand-driven flows that need the bare link keep working: swap the manual
//!   wiring for [`campaign::CampaignBuilder::env`], which returns the
//!   isolated [`campaign::TargetEnv`] (device, link, tap, clock).
//!
//! [`session::L2FuzzSession`] itself is unchanged and remains the four-phase
//! engine; only the harness around it moved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod config;
pub mod detector;
pub mod fuzzer;
pub mod guide;
pub mod mutator;
pub mod queue;
pub mod report;
pub mod retry;
pub mod scanner;
pub mod session;

pub use campaign::{
    run_sharded, Campaign, CampaignError, CampaignExecutor, CampaignOutcome, OraclePolicy,
    SeedSweepExecutor, SerialExecutor, ShardedExecutor, TargetEnv, TargetOutcome,
};
pub use config::FuzzConfig;
pub use fuzzer::{FuzzCtx, Fuzzer, TxBudget};
pub use hci::fault::{FaultPlan, WatchdogExpired};
pub use report::{FuzzReport, VulnerabilityFinding};
pub use retry::RetryPolicy;
pub use session::{L2FuzzSession, L2FuzzTool};
