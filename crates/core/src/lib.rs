//! L2Fuzz: a stateful fuzzer for the Bluetooth L2CAP layer.
//!
//! This crate is the paper's primary contribution, reproduced against the
//! simulated substrate of the `hci`/`btstack` crates.  The workflow follows
//! Fig. 5 of the paper:
//!
//! 1. **Target scanning** ([`scanner`]) — discover the device, enumerate its
//!    service ports and pick one that does not require pairing (falling back
//!    to SDP).
//! 2. **State guiding** ([`guide`]) — drive the target's channel state
//!    machine into each reachable state using only commands that are valid
//!    for the state's job (Tables I and III).
//! 3. **Core field mutating** ([`mutator`]) — generate malformed packets that
//!    mutate only the mutable-core fields (PSM from the abnormal ranges of
//!    Table IV, CIDP from the dynamic range ignoring allocation) and append a
//!    bounded garbage tail, keeping every other field valid (Algorithm 1).
//! 4. **Vulnerability detecting** ([`detector`]) — watch the target's
//!    responses for connection errors, ping it with L2CAP echo requests and
//!    collect crash dumps through the out-of-band oracle.
//!
//! [`session::L2FuzzSession`] ties the four phases together and produces a
//! [`report::FuzzReport`]; the [`fuzzer::Fuzzer`] trait is the common
//! interface shared with the baseline fuzzers for the comparison experiments.
//!
//! # Quickstart
//!
//! ```
//! use btcore::{FuzzRng, SimClock};
//! use btstack::device::{share, DeviceOracle};
//! use btstack::profiles::{DeviceProfile, ProfileId};
//! use hci::air::AirMedium;
//! use hci::device::VirtualDevice;
//! use hci::link::LinkConfig;
//! use l2fuzz::config::FuzzConfig;
//! use l2fuzz::session::L2FuzzSession;
//!
//! // Build a simulated device and register it on the virtual air medium.
//! let clock = SimClock::new();
//! let mut air = AirMedium::new(clock.clone());
//! let profile = DeviceProfile::table5(ProfileId::D2);
//! let (device, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(11)));
//! air.register(adapter);
//! let meta = device.lock().meta();
//!
//! // Connect an ACL link and run the four-phase session against it.
//! let mut link = air
//!     .connect(profile.addr, LinkConfig::default(), FuzzRng::seed_from(12))
//!     .unwrap();
//! let mut oracle = DeviceOracle::new(device.clone());
//! let config = FuzzConfig { seed: 11, ..FuzzConfig::default() };
//! let report = L2FuzzSession::new(config, clock).run(&mut link, meta, Some(&mut oracle));
//!
//! // Inspect the report: findings, packets sent, states tested.
//! assert!(report.vulnerable());
//! assert!(report.packets_sent > 0);
//! assert!(!report.states_tested.is_empty());
//! ```
//!
//! The `quickstart` workspace example and the crate-level test suite show the
//! same wiring with tracing and metrics attached.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod detector;
pub mod fuzzer;
pub mod guide;
pub mod mutator;
pub mod queue;
pub mod report;
pub mod scanner;
pub mod session;

pub use config::FuzzConfig;
pub use fuzzer::Fuzzer;
pub use report::{FuzzReport, VulnerabilityFinding};
pub use session::L2FuzzSession;
