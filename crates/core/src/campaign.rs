//! The unified campaign API: one entry point for every experiment.
//!
//! Every experiment in the repository — the Table V device survey, the
//! Table VI elapsed-time runs, the §IV-C/D fuzzer comparisons, the examples
//! and the integration tests — used to hand-roll the same ritual: build a
//! medium, register devices, connect, attach a tap, construct a session
//! and run it.  [`Campaign::builder`] replaces that ritual with one fluent
//! entry point:
//!
//! ```
//! use btstack::profiles::{DeviceProfile, ProfileId};
//! use l2fuzz::campaign::Campaign;
//!
//! let outcome = Campaign::builder()
//!     .target(DeviceProfile::table5(ProfileId::D2))
//!     .seed(11)
//!     .run()
//!     .expect("campaign runs");
//! assert!(outcome.targets[0].report.vulnerable());
//! ```
//!
//! # Isolation and determinism
//!
//! Each target gets a fully isolated environment: its own [`SimClock`], its
//! own [`EventMedium`], and RNG streams derived from the campaign seed and
//! the target's position in the list.  Nothing is shared between targets,
//! so the per-target [`FuzzReport`]s and traces are a pure function of the
//! campaign seed — identical under [`SerialExecutor`] and under
//! [`ShardedExecutor`] at any thread count.  *Within* a target, concurrent
//! initiators are serialized by the medium's event scheduler in virtual-time
//! order, so multi-initiator campaigns replay bit-for-bit too.
//! `tests/deterministic_replay.rs` enforces all of this.
//!
//! # Concurrent initiators
//!
//! [`CampaignBuilder::initiators_per_target`] runs several initiators
//! against each target at once — each with its own link, tap, clock, seed
//! stream and fresh fuzzer instance, served by an isolated device-side
//! acceptor (per-link CID spaces).  [`CampaignBuilder::dual_transport`] is
//! the two-initiator special case that fuzzes a dual-mode device over
//! BR/EDR and LE in one run.  The first initiator's results land in
//! [`TargetOutcome::report`]/[`TargetOutcome::trace`] (so single-initiator
//! campaigns look exactly like before); the rest are in
//! [`TargetOutcome::secondary`].
//!
//! # Executors
//!
//! [`CampaignExecutor`] decides how the per-target environments are driven:
//! [`SerialExecutor`] runs them one after another on the calling thread,
//! [`ShardedExecutor`] partitions them across worker threads, and
//! [`SeedSweepExecutor`] runs *many campaigns per target* — one per sweep
//! seed — which is how probability-gated triggers (the LE credit-flow
//! vulnerabilities) get a fair chance to fire.

use std::sync::Arc;
use std::time::Duration;

use btcore::{BtError, DeviceMeta, LinkType, SimClock};
use btstack::device::{share, DeviceOracle, SharedSimulatedDevice};
use btstack::profiles::DeviceProfile;
use hci::link::{new_tap, LinkConfig, SharedTap};
use hci::medium::{EventGate, EventMedium, LinkHandle, LinkSpec, Medium};
use parking_lot::Mutex;
use sniffer::Trace;

use crate::config::FuzzConfig;
use crate::fuzzer::{FuzzCtx, Fuzzer, TxBudget};
use crate::report::FuzzReport;
use crate::retry::RetryPolicy;
use crate::scanner::ScanReport;
use crate::session::L2FuzzTool;
use hci::fault::FaultPlan;

use btcore::FuzzRng;

/// Creates one fresh fuzzer instance per campaign initiator.
pub type FuzzerSpawner = Arc<dyn Fn() -> Box<dyn Fuzzer> + Send + Sync>;

/// What a finished builder decomposes into: the shareable plan, the executor
/// driving it, and the optional observer clock.
type PlanParts = (CampaignPlan, Box<dyn CampaignExecutor>, Option<SimClock>);

/// Whether campaign targets are observed out of band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OraclePolicy {
    /// Attach a [`DeviceOracle`] to every target (crash dumps + service
    /// status), as the original tool does via `adb`/`ssh`.
    #[default]
    OutOfBand,
    /// Fuzz blind: detection works from on-air behaviour alone.
    None,
}

/// How many links a campaign establishes per target, and over which
/// transports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum LinkPlan {
    /// One initiator on the profile's primary transport.
    #[default]
    Single,
    /// `n` concurrent initiators, all on the primary transport.
    Initiators(usize),
    /// Two concurrent initiators: one BR/EDR, one LE (dual-mode targets).
    DualTransport,
}

impl LinkPlan {
    fn link_types(&self, profile: &DeviceProfile) -> Vec<LinkType> {
        match self {
            LinkPlan::Single => vec![profile.link_type],
            LinkPlan::Initiators(n) => vec![profile.link_type; (*n).max(1)],
            LinkPlan::DualTransport => vec![LinkType::BrEdr, LinkType::Le],
        }
    }
}

/// Errors surfaced while setting up or running a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// `run()` was called without any target device.
    NoTargets,
    /// `env()` was called on a campaign with more than one target.
    MultipleTargets {
        /// How many targets the builder held.
        count: usize,
    },
    /// A target environment could not establish an ACL link.
    Connect {
        /// The target that failed.
        profile: Box<DeviceProfile>,
        /// The transport the failed link was requested over.
        link_type: LinkType,
        /// The underlying connection error.
        source: BtError,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::NoTargets => write!(f, "campaign has no target devices"),
            CampaignError::MultipleTargets { count } => {
                write!(f, "manual env() needs exactly one target, got {count}")
            }
            CampaignError::Connect {
                profile,
                link_type,
                source,
            } => {
                write!(
                    f,
                    "cannot connect to {} ({}) over {link_type}: {source}",
                    profile.id, profile.name
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// A fully wired, isolated environment for one campaign target.
///
/// Campaign executors build one of these per target; hand-driven flows (the
/// BlueBorne replay, the Pixel 3 case study) obtain one through
/// [`CampaignBuilder::env`] instead of wiring a medium by hand.
pub struct TargetEnv {
    /// The profile this environment instantiates.
    pub profile: DeviceProfile,
    /// Typed handle to the simulated device (for oracle access and crash
    /// dump inspection).
    pub device: SharedSimulatedDevice,
    /// The established ACL link, tap already attached.
    pub link: LinkHandle,
    /// The packet tap capturing all traffic on the link.
    pub tap: SharedTap,
    /// The environment's virtual clock (starts at zero).
    pub clock: SimClock,
    /// The target's metadata.
    pub meta: DeviceMeta,
    /// The per-target seed every RNG stream of this environment derives
    /// from.
    pub seed: u64,
}

impl TargetEnv {
    /// The out-of-band oracle over this environment's device.
    pub fn oracle(&self) -> DeviceOracle {
        DeviceOracle::new(self.device.clone())
    }

    /// Drains the traffic captured so far into a trace.  The capture moves —
    /// the tap starts over, so a later call only sees traffic driven after
    /// this one.
    pub fn trace(&self) -> Trace {
        Trace::from_tap(&self.tap)
    }
}

/// The immutable description of a campaign, shared by every executor shard.
pub struct CampaignPlan {
    targets: Vec<DeviceProfile>,
    spawner: FuzzerSpawner,
    budget: TxBudget,
    oracle: OraclePolicy,
    link_config: LinkConfig,
    seed: u64,
    auto_restart: bool,
    link_plan: LinkPlan,
    retry: RetryPolicy,
    watchdog_micros: Option<u64>,
}

/// Per-target seed derivation: the campaign seed and the target's position
/// feed one SplitMix64 step, so every target gets an independent stream.
fn derive_seed(base: u64, index: u64) -> u64 {
    btcore::splitmix64(base.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Per-initiator seed derivation within one target.  Initiator 0 keeps the
/// raw per-target seed so single-initiator campaigns replay the synchronous
/// medium bit for bit; later initiators get independent streams.
fn initiator_seed(target_seed: u64, k: usize) -> u64 {
    if k == 0 {
        target_seed
    } else {
        btcore::splitmix64(target_seed ^ (k as u64).wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

/// A [`DeviceOracle`] whose every observation passes the medium's turnstile
/// through the owning initiator's [`EventGate`].
///
/// The oracle reads shared device state (host status, the crash-dump
/// cursor) that concurrent initiators mutate through their exchanges;
/// gating each read makes "has the device died yet?" — and who collects a
/// fresh crash dump first — a question answered in virtual-time order, so
/// multi-initiator campaigns stay bit-for-bit replayable.
struct ScheduledOracle {
    inner: DeviceOracle,
    gate: EventGate,
    dump_faults: Option<DumpFaults>,
}

/// Deterministic crash-dump read-failure stream of one initiator's oracle.
///
/// Models `adb`/`ssh` dump collection failing on a flaky connection: a
/// failed read returns `false` *without consuming the dump*, so a later
/// attempt (the next detection check) can still collect it.  The stream is
/// seeded from the initiator seed, so faulty campaigns replay bit for bit.
struct DumpFaults {
    probability: f64,
    rng: FuzzRng,
}

impl DumpFaults {
    fn from_plan(faults: &FaultPlan, initiator_seed: u64) -> Option<DumpFaults> {
        (faults.dump_read_failure > 0.0).then(|| DumpFaults {
            probability: faults.dump_read_failure,
            rng: FuzzRng::seed_from(btcore::splitmix64(initiator_seed ^ 0x0D0C_FA17)),
        })
    }
}

impl btcore::TargetOracle for ScheduledOracle {
    fn ping(&mut self) -> btcore::PingOutcome {
        let inner = &mut self.inner;
        self.gate.serialized(|| inner.ping())
    }

    fn take_crash_dump(&mut self) -> bool {
        let inner = &mut self.inner;
        let dump_faults = &mut self.dump_faults;
        // The failure decision happens inside the gated event, so the event
        // schedule is identical whether or not the read fails.
        self.gate.serialized(|| {
            if let Some(faults) = dump_faults {
                if faults.rng.chance(faults.probability) {
                    return false;
                }
            }
            inner.take_crash_dump()
        })
    }

    fn bluetooth_alive(&self) -> bool {
        let inner = &self.inner;
        self.gate.serialized(|| inner.bluetooth_alive())
    }
}

/// One initiator's wiring against a target: its link, tap, clock and seed.
struct InitiatorEnv {
    link: LinkHandle,
    tap: SharedTap,
    clock: SimClock,
    meta: DeviceMeta,
    seed: u64,
    link_type: LinkType,
}

/// A target's full environment: the shared device plus one
/// [`InitiatorEnv`] per planned link.
struct TargetSetup {
    profile: DeviceProfile,
    device: SharedSimulatedDevice,
    clock: SimClock,
    initiators: Vec<InitiatorEnv>,
    seed: u64,
}

impl CampaignPlan {
    /// Number of targets in the campaign.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// The campaign seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn build_setup(
        &self,
        index: usize,
        campaign_seed: u64,
        clock: SimClock,
    ) -> Result<TargetSetup, CampaignError> {
        let profile = self.targets[index].clone();
        let seed = derive_seed(campaign_seed, index as u64);
        let mut medium = EventMedium::with_seed(clock.clone(), seed);
        let mut device = profile.build(clock.clone(), FuzzRng::seed_from(seed));
        device.set_auto_restart(self.auto_restart);
        let (device, adapter) = share(device);
        medium.register_shared(adapter);
        let meta = {
            use hci::device::VirtualDevice;
            device.lock().meta()
        };
        let link_types = self.link_plan.link_types(&profile);
        let single = link_types.len() == 1;
        let mut initiators = Vec::with_capacity(link_types.len());
        for (k, link_type) in link_types.into_iter().enumerate() {
            let initiator_seed = initiator_seed(seed, k);
            // The link's own clock: the shared environment clock in
            // single-initiator mode (the synchronous medium's exact cost
            // accounting), an independent timeline per initiator otherwise.
            let link_clock = if single {
                clock.clone()
            } else {
                SimClock::new()
            };
            let mut spec = LinkSpec::new(
                profile.addr,
                self.link_config,
                FuzzRng::seed_from(initiator_seed ^ 0xA5A5),
            )
            .on(link_type);
            spec = spec.with_clock(link_clock.clone());
            if let Some(micros) = self.watchdog_micros {
                spec = spec.with_watchdog(micros);
            }
            let mut link = medium
                .connect_spec(spec)
                .map_err(|source| CampaignError::Connect {
                    profile: Box::new(profile.clone()),
                    link_type,
                    source,
                })?;
            let tap = new_tap();
            link.attach_tap(tap.clone());
            initiators.push(InitiatorEnv {
                link,
                tap,
                clock: link_clock,
                meta: meta.clone().with_link_type(link_type),
                seed: initiator_seed,
                link_type,
            });
        }
        Ok(TargetSetup {
            profile,
            device,
            clock,
            initiators,
            seed,
        })
    }

    fn build_env_on(&self, index: usize, clock: SimClock) -> Result<TargetEnv, CampaignError> {
        let mut setup = self.build_setup(index, self.seed, clock)?;
        let initiator = setup.initiators.remove(0);
        Ok(TargetEnv {
            profile: setup.profile,
            device: setup.device,
            link: initiator.link,
            tap: initiator.tap,
            clock: setup.clock,
            meta: initiator.meta,
            seed: setup.seed,
        })
    }

    /// Builds the environment for target `index`, runs the campaign's
    /// fuzzer(s) in it and collects the outcome, deriving everything from
    /// the plan's own campaign seed.  This is the unit of work executors
    /// schedule; it touches no shared state, which is what makes sharding
    /// deterministic.
    pub fn run_target(&self, index: usize) -> Result<TargetOutcome, CampaignError> {
        self.run_target_with_seed(index, self.seed)
    }

    /// Like [`CampaignPlan::run_target`], but derives the target's streams
    /// from `campaign_seed` instead of the plan's — the unit of work of
    /// [`SeedSweepExecutor`], which runs one campaign per sweep seed.
    pub fn run_target_with_seed(
        &self,
        index: usize,
        campaign_seed: u64,
    ) -> Result<TargetOutcome, CampaignError> {
        let setup = self.build_setup(index, campaign_seed, SimClock::new())?;
        let device = setup.device;
        let oracle_policy = self.oracle;
        let run_one = |env: &mut InitiatorEnv, fuzzer: &mut Box<dyn Fuzzer>| {
            // Held across the whole run: if the tool panics, the unwinding
            // thread still retires its link, so concurrent initiators (and
            // the thread scope joining them) are not deadlocked behind a
            // source that will never advance.
            let _retire_on_unwind = env.link.retire_guard();
            let mut oracle = match oracle_policy {
                OraclePolicy::OutOfBand => Some(ScheduledOracle {
                    inner: DeviceOracle::new(device.clone()),
                    gate: env.link.event_gate(),
                    dump_faults: DumpFaults::from_plan(&self.link_config.faults, env.seed),
                }),
                OraclePolicy::None => None,
            };
            let mut ctx = FuzzCtx::new(
                &mut env.link,
                env.clock.clone(),
                env.tap.clone(),
                env.meta.clone(),
                env.seed,
                self.budget,
                oracle.as_mut().map(|o| o as &mut dyn btcore::TargetOracle),
            );
            ctx.retry = self.retry;
            let report = fuzzer.fuzz(&mut ctx);
            // Initiators retire as soon as they stop driving traffic so
            // concurrent links do not wait on a finished peer.
            env.link.retire();
            report.unwrap_or_else(|| {
                skeleton_report(
                    fuzzer.name(),
                    &env.meta,
                    env.link.frames_sent(),
                    env.clock.now().as_secs(),
                )
            })
        };

        let mut initiators = setup.initiators;
        let outcomes: Vec<InitiatorOutcome> = if initiators.len() == 1 {
            let env = &mut initiators[0];
            let mut fuzzer = (self.spawner)();
            let report = run_one(env, &mut fuzzer);
            vec![InitiatorOutcome {
                link_type: env.link_type,
                seed: env.seed,
                elapsed: env.clock.now(),
                trace: Trace::from_tap(&env.tap),
                report,
            }]
        } else {
            let run_one = &run_one;
            std::thread::scope(|scope| {
                let handles: Vec<_> = initiators
                    .iter_mut()
                    .map(|env| {
                        let mut fuzzer = (self.spawner)();
                        scope.spawn(move || {
                            let report = run_one(env, &mut fuzzer);
                            InitiatorOutcome {
                                link_type: env.link_type,
                                seed: env.seed,
                                elapsed: env.clock.now(),
                                trace: Trace::from_tap(&env.tap),
                                report,
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // An initiator panic (tool bug or watchdog expiry) is
                    // re-raised on the coordinating thread with its payload
                    // intact, so callers that contain panics (the sweep
                    // service) can still classify a `WatchdogExpired`.
                    .map(|h| match h.join() {
                        Ok(outcome) => outcome,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
        };

        let mut outcomes = outcomes.into_iter();
        // analyzer: allow(panic) — the initiator list is validated non-empty
        // at campaign construction.
        let primary = outcomes.next().expect("at least one initiator");
        Ok(TargetOutcome {
            elapsed: setup.clock.now(),
            trace: primary.trace,
            report: primary.report,
            secondary: outcomes.collect(),
            campaign_seed,
            device,
            profile: setup.profile,
        })
    }
}

/// Skeleton report for trace-only tools (the baselines): link statistics
/// only, no structured findings.
fn skeleton_report(
    name: &str,
    meta: &DeviceMeta,
    packets_sent: u64,
    elapsed_secs: u64,
) -> FuzzReport {
    FuzzReport {
        fuzzer: name.to_owned(),
        target: meta.clone(),
        scan: ScanReport {
            meta: meta.clone(),
            probes: Vec::new(),
            chosen_port: None,
        },
        states_tested: Vec::new(),
        packets_sent,
        malformed_sent: 0,
        findings: Vec::new(),
        elapsed_secs,
    }
}

/// What one initiator of a target produced.
pub struct InitiatorOutcome {
    /// The transport this initiator fuzzed over.
    pub link_type: LinkType,
    /// The initiator's seed stream.
    pub seed: u64,
    /// The tool's report (synthesized from link statistics for trace-only
    /// baselines).
    pub report: FuzzReport,
    /// Every packet that crossed this initiator's link, in order.
    pub trace: Trace,
    /// Virtual time on this initiator's timeline.
    pub elapsed: Duration,
}

/// What one target produced.
pub struct TargetOutcome {
    /// The target's profile.
    pub profile: DeviceProfile,
    /// The first initiator's report (the only one in single-initiator
    /// campaigns; synthesized from link statistics for trace-only
    /// baselines).
    pub report: FuzzReport,
    /// Every packet that crossed the first initiator's link, in order.
    pub trace: Trace,
    /// The remaining initiators' outcomes, in link order (empty unless the
    /// campaign ran concurrent initiators).
    pub secondary: Vec<InitiatorOutcome>,
    /// The campaign seed this outcome derives from (differs from the
    /// builder's seed under [`SeedSweepExecutor`]).
    pub campaign_seed: u64,
    /// Virtual time the target's environment consumed (the latest fired
    /// event across all links).
    pub elapsed: Duration,
    /// The simulated device, for post-campaign inspection (crash dumps,
    /// fired vulnerabilities, host status).
    pub device: SharedSimulatedDevice,
}

impl TargetOutcome {
    /// Number of initiators that fuzzed this target.
    pub fn initiator_count(&self) -> usize {
        1 + self.secondary.len()
    }

    /// Every initiator's report, first initiator first.
    pub fn reports(&self) -> impl Iterator<Item = &FuzzReport> {
        std::iter::once(&self.report).chain(self.secondary.iter().map(|i| &i.report))
    }

    /// Returns `true` if any initiator detected a vulnerability.
    pub fn any_vulnerable(&self) -> bool {
        self.reports().any(|r| r.vulnerable())
    }

    /// All initiators' traffic merged into one trace, ordered by virtual
    /// timestamp.
    pub fn merged_trace(&self) -> Trace {
        let mut merged = self.trace.clone();
        for initiator in &self.secondary {
            merged.merge(initiator.trace.clone());
        }
        merged
    }
}

/// The result of a whole campaign, targets in the order they were added.
///
/// Under [`SeedSweepExecutor`] there is one entry per `(target, seed)` pair,
/// target-major — all sweep seeds of target 0 first, then target 1, and so
/// on; [`TargetOutcome::campaign_seed`] identifies the sweep seed.
pub struct CampaignOutcome {
    /// One outcome per target (or per target × sweep seed).
    pub targets: Vec<TargetOutcome>,
    /// Campaign wall-clock: the longest per-target virtual time (targets run
    /// in parallel in the modelled world).
    pub elapsed: Duration,
}

impl CampaignOutcome {
    /// The per-target reports (first initiator of each target), in target
    /// order.
    pub fn reports(&self) -> impl Iterator<Item = &FuzzReport> {
        self.targets.iter().map(|t| &t.report)
    }

    /// Number of targets where at least one initiator found something.
    pub fn vulnerable_count(&self) -> usize {
        self.targets.iter().filter(|t| t.any_vulnerable()).count()
    }

    /// Consumes a single-target campaign's outcome.
    ///
    /// # Panics
    /// Panics if the campaign had more than one target.
    pub fn into_single(mut self) -> TargetOutcome {
        assert_eq!(self.targets.len(), 1, "campaign has multiple targets");
        // analyzer: allow(panic) — guarded by the assert directly above.
        self.targets.pop().expect("one target")
    }
}

/// Strategy for driving the per-target environments of a campaign.
pub trait CampaignExecutor: Send + Sync {
    /// Executor name for logs.
    fn name(&self) -> &'static str;

    /// Runs every target of `plan` and returns the outcomes in target order.
    ///
    /// # Errors
    /// Propagates the first [`CampaignError`] any target hit.
    fn execute(&self, plan: &CampaignPlan) -> Result<Vec<TargetOutcome>, CampaignError>;
}

/// Runs targets one after another on the calling thread; bit-for-bit the
/// behaviour the hand-rolled experiment harnesses had.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl CampaignExecutor for SerialExecutor {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn execute(&self, plan: &CampaignPlan) -> Result<Vec<TargetOutcome>, CampaignError> {
        (0..plan.target_count())
            .map(|i| plan.run_target(i))
            .collect()
    }
}

/// Drives `units` isolated work items across `workers` threads with a
/// dynamic work index, collecting results in unit order.  Each unit is
/// self-contained, so threading changes wall-clock time only — the shared
/// machinery of [`ShardedExecutor`] and [`SeedSweepExecutor`], generic over
/// the unit result so engines layered on top of the campaign API (the
/// coverage-feedback corpus merge, for one) shard their own unit types
/// through the identical scheduling discipline instead of reinventing it.
pub fn run_sharded<T, F>(units: usize, workers: usize, run: F) -> Result<Vec<T>, CampaignError>
where
    T: Send,
    F: Fn(usize) -> Result<T, CampaignError> + Sync,
{
    let slots: Vec<Mutex<Option<Result<T, CampaignError>>>> =
        (0..units).map(|_| Mutex::new(None)).collect();
    // Dynamic work index rather than static striping: per-unit runtimes are
    // skewed by orders of magnitude (a hardened device burns its full round
    // cap while a fragile one falls instantly), so idle workers pull the
    // next pending unit.  Determinism is untouched — each unit's
    // environment is isolated and its outcome is keyed by index.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let failed = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let slots = &slots;
            let next = &next;
            let failed = &failed;
            let run = &run;
            scope.spawn(move || loop {
                // Fail fast: once any unit errors the whole campaign is
                // doomed, so don't burn the remaining units' runtimes.
                if failed.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if index >= units {
                    break;
                }
                let outcome = run(index);
                if outcome.is_err() {
                    failed.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                *slots[index].lock() = Some(outcome);
            });
        }
    });
    if failed.into_inner() {
        // Return the first error in unit order.
        for slot in slots {
            if let Some(Err(e)) = slot.into_inner() {
                return Err(e);
            }
        }
        unreachable!("a failure was flagged but no slot holds an error");
    }
    slots
        .into_iter()
        // analyzer: allow(panic) — workers either fill every slot or flag a
        // failure, which returned above.
        .map(|slot| slot.into_inner().expect("every worker fills its slots"))
        .collect()
}

/// Distributes targets across worker threads.
///
/// Workers pull targets off a shared work index as they go idle, so skewed
/// per-target runtimes balance out.  Each target still runs in its own
/// isolated environment (own clock, own medium, own RNG streams), so the
/// per-target results are identical to [`SerialExecutor`]'s at any thread
/// count — threading only changes wall-clock time.
#[derive(Debug, Clone, Copy)]
pub struct ShardedExecutor {
    threads: usize,
}

impl ShardedExecutor {
    /// Creates an executor with the given number of worker threads (at least
    /// one).
    pub fn new(threads: usize) -> Self {
        ShardedExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl CampaignExecutor for ShardedExecutor {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn execute(&self, plan: &CampaignPlan) -> Result<Vec<TargetOutcome>, CampaignError> {
        let n = plan.target_count();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            return SerialExecutor.execute(plan);
        }
        run_sharded(n, workers, |index| plan.run_target(index))
    }
}

/// Runs *many campaigns per target* — one per sweep seed — and returns the
/// outcomes target-major (all sweep seeds of target 0, then target 1, ...).
///
/// Sweeping is how probability-gated triggers get their shot: a
/// vulnerability that fires on only a few percent of matching packets can
/// easily survive one campaign, but rarely survives eight independently
/// seeded ones.  Each `(target, seed)` unit is a fully isolated campaign,
/// so sweeps shard across worker threads with the same bit-for-bit
/// determinism guarantee as [`ShardedExecutor`].
///
/// Feedback engines pool discoveries across the sweep barrier-free: a unit
/// *publishes* (never reads) its findings into a shared accumulator keyed by
/// its sweep seed as it finishes, and the accumulator is only merged — in
/// canonical seed order, independent of completion order — after
/// [`SeedSweepExecutor::execute`] returns.  Publish-only sharing keeps every
/// unit a pure function of its `(target, seed)` pair, so the sweep stays
/// bit-for-bit replayable at any thread count while still pooling novelty
/// (see the `feedback` crate's corpus hub, which implements this contract on
/// top of [`run_sharded`]'s work index).
#[derive(Debug, Clone)]
pub struct SeedSweepExecutor {
    seeds: Vec<u64>,
    threads: usize,
}

impl SeedSweepExecutor {
    /// Creates a serial sweep over the given seeds.
    ///
    /// # Panics
    /// Panics if `seeds` is empty — a sweep with no seeds runs nothing.
    pub fn new(seeds: impl IntoIterator<Item = u64>) -> Self {
        let seeds: Vec<u64> = seeds.into_iter().collect();
        assert!(!seeds.is_empty(), "seed sweep needs at least one seed");
        SeedSweepExecutor { seeds, threads: 1 }
    }

    /// A sweep over `count` seeds derived from `base` (a convenient way to
    /// say "give this target `count` independent chances").
    pub fn derived(base: u64, count: usize) -> Self {
        assert!(count > 0, "seed sweep needs at least one seed");
        SeedSweepExecutor::new((0..count as u64).map(|i| btcore::splitmix64(base.wrapping_add(i))))
    }

    /// Shards the sweep's `(target, seed)` units across `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The sweep's seeds, in execution order.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }
}

impl CampaignExecutor for SeedSweepExecutor {
    fn name(&self) -> &'static str {
        "seed-sweep"
    }

    fn execute(&self, plan: &CampaignPlan) -> Result<Vec<TargetOutcome>, CampaignError> {
        let per_target = self.seeds.len();
        let units = plan.target_count() * per_target;
        let workers = self.threads.min(units.max(1));
        let unit = |index: usize| {
            let target = index / per_target;
            let seed = self.seeds[index % per_target];
            plan.run_target_with_seed(target, seed)
        };
        if workers <= 1 {
            return (0..units).map(unit).collect();
        }
        run_sharded(units, workers, unit)
    }
}

/// Marker type; use [`Campaign::builder`].
pub struct Campaign;

impl Campaign {
    /// Starts describing a campaign.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::default()
    }
}

/// Fluent description of a campaign; finish with [`CampaignBuilder::run`]
/// (or [`CampaignBuilder::env`] for hand-driven flows).
pub struct CampaignBuilder {
    clock: Option<SimClock>,
    targets: Vec<DeviceProfile>,
    spawner: Option<FuzzerSpawner>,
    budget: TxBudget,
    oracle: OraclePolicy,
    link_config: LinkConfig,
    seed: u64,
    auto_restart: bool,
    executor: Box<dyn CampaignExecutor>,
    link_plan: LinkPlan,
    retry: Option<RetryPolicy>,
    watchdog_micros: Option<u64>,
}

impl Default for CampaignBuilder {
    fn default() -> Self {
        CampaignBuilder {
            clock: None,
            targets: Vec::new(),
            spawner: None,
            budget: TxBudget::unlimited(),
            oracle: OraclePolicy::OutOfBand,
            link_config: LinkConfig::default(),
            seed: FuzzConfig::default().seed,
            auto_restart: false,
            executor: Box::new(SerialExecutor),
            link_plan: LinkPlan::Single,
            retry: None,
            watchdog_micros: None,
        }
    }
}

impl CampaignBuilder {
    /// Observes the campaign on `clock`: after the run it is advanced by the
    /// campaign's elapsed time (the longest per-target time — targets run on
    /// isolated clocks, in parallel in the modelled world).
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Adds one target device.
    pub fn target(mut self, profile: DeviceProfile) -> Self {
        self.targets.push(profile);
        self
    }

    /// Adds several target devices.
    pub fn targets(mut self, profiles: impl IntoIterator<Item = DeviceProfile>) -> Self {
        self.targets.extend(profiles);
        self
    }

    /// Sets the tool: `spawn` is called once per initiator so every link
    /// gets a fresh instance.  Defaults to a single L2Fuzz detection session
    /// with the paper's configuration.
    pub fn fuzzer(mut self, spawn: impl Fn() -> Box<dyn Fuzzer> + Send + Sync + 'static) -> Self {
        self.spawner = Some(Arc::new(spawn));
        self
    }

    /// Sets the per-initiator transmission budget (default: unlimited).
    ///
    /// The unlimited default suits the default tool (L2Fuzz detection, which
    /// stops at a finding or its round cap); budget-driven tools — the
    /// trace-only baselines and [`L2FuzzTool::comparison`] — run until the
    /// budget is spent or the target dies, so give them a finite budget or
    /// the campaign will not terminate.
    pub fn budget(mut self, budget: TxBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the out-of-band oracle policy (default:
    /// [`OraclePolicy::OutOfBand`]).
    pub fn oracle(mut self, oracle: OraclePolicy) -> Self {
        self.oracle = oracle;
        self
    }

    /// Sets the physical-layer link behaviour (default:
    /// [`LinkConfig::default`]).
    pub fn link_config(mut self, config: LinkConfig) -> Self {
        self.link_config = config;
        self
    }

    /// Sets the campaign seed; every per-target RNG stream derives from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Turns this into a chaos campaign: injects `plan` at every link's
    /// deliver path (loss, duplication, corruption, jitter, reordering,
    /// stalls, crash-dump read failures — see [`FaultPlan`]).  Every fault
    /// decision derives from the per-event seed stream, so faulty campaigns
    /// replay bit for bit; [`FaultPlan::none`] is byte-identical to not
    /// calling this at all.
    ///
    /// Unless [`CampaignBuilder::retry`] is set explicitly, a non-trivial
    /// plan also arms [`RetryPolicy::lossy_link`] so the drivers tolerate
    /// the faults they are being dealt.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.link_config.faults = plan;
        self
    }

    /// Sets the drivers' retry tolerance (state-guide preludes, detection
    /// pings).  Defaults to [`RetryPolicy::none`] on a clean link and
    /// [`RetryPolicy::lossy_link`] once [`CampaignBuilder::faults`] injects
    /// a non-trivial plan.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Arms a per-link virtual-time watchdog: a link whose virtual clock
    /// runs `budget` past connection establishment panics with a typed
    /// [`WatchdogExpired`](hci::fault::WatchdogExpired) payload on the next
    /// send.  The sweep service contains the panic and records the job as
    /// timed out; standalone campaigns propagate it.
    pub fn watchdog(mut self, budget: Duration) -> Self {
        self.watchdog_micros = Some(budget.as_micros() as u64);
        self
    }

    /// Restarts each target's Bluetooth service after a vulnerability fires
    /// (the tester's "manual reset"; the long comparison runs need it).
    pub fn auto_restart(mut self, enabled: bool) -> Self {
        self.auto_restart = enabled;
        self
    }

    /// Runs `n` concurrent initiators against every target, each with its
    /// own link, seed stream and fresh fuzzer instance (`n` is clamped to at
    /// least 1).  All initiators use the target's primary transport;
    /// combine dual-mode targets with
    /// [`CampaignBuilder::dual_transport`] instead to split transports.
    /// Overrides a previous `dual_transport()` call.
    pub fn initiators_per_target(mut self, n: usize) -> Self {
        self.link_plan = if n <= 1 {
            LinkPlan::Single
        } else {
            LinkPlan::Initiators(n)
        };
        self
    }

    /// Fuzzes every target over BR/EDR *and* LE concurrently — one
    /// initiator per transport, each served by its own device-side
    /// acceptor.  Targets must be dual-mode ([`DeviceProfile::dual_mode`])
    /// or the campaign fails to connect.  Overrides a previous
    /// `initiators_per_target()` call.
    pub fn dual_transport(mut self) -> Self {
        self.link_plan = LinkPlan::DualTransport;
        self
    }

    /// Sets the executor (default: [`SerialExecutor`]).
    pub fn executor(mut self, executor: impl CampaignExecutor + 'static) -> Self {
        self.executor = Box::new(executor);
        self
    }

    fn into_plan(self) -> Result<PlanParts, CampaignError> {
        if self.targets.is_empty() {
            return Err(CampaignError::NoTargets);
        }
        let spawner = self.spawner.unwrap_or_else(|| {
            Arc::new(|| {
                Box::new(L2FuzzTool::detection(FuzzConfig::default(), 1)) as Box<dyn Fuzzer>
            })
        });
        let retry = self.retry.unwrap_or(if self.link_config.faults.is_none() {
            RetryPolicy::none()
        } else {
            RetryPolicy::lossy_link()
        });
        Ok((
            CampaignPlan {
                targets: self.targets,
                spawner,
                budget: self.budget,
                oracle: self.oracle,
                link_config: self.link_config,
                seed: self.seed,
                auto_restart: self.auto_restart,
                link_plan: self.link_plan,
                retry,
                watchdog_micros: self.watchdog_micros,
            },
            self.executor,
            self.clock,
        ))
    }

    /// Builds the campaign's immutable plan without running anything — the
    /// entry point for schedulers (such as the sweep service) that own job
    /// dispatch themselves and call [`CampaignPlan::run_target_with_seed`]
    /// per unit of work.  The executor and clock settings do not apply: the
    /// caller is the executor.
    ///
    /// # Errors
    /// Returns [`CampaignError::NoTargets`] for an empty target list.
    pub fn plan(self) -> Result<CampaignPlan, CampaignError> {
        let (plan, _, _) = self.into_plan()?;
        Ok(plan)
    }

    /// Runs the campaign and collects every target's outcome.
    ///
    /// # Errors
    /// Returns [`CampaignError::NoTargets`] for an empty target list and
    /// [`CampaignError::Connect`] when a target's link cannot be
    /// established (including dual-transport campaigns against a target
    /// that is not dual-mode).
    pub fn run(self) -> Result<CampaignOutcome, CampaignError> {
        let (plan, executor, clock) = self.into_plan()?;
        let targets = executor.execute(&plan)?;
        let elapsed = targets.iter().map(|t| t.elapsed).max().unwrap_or_default();
        if let Some(clock) = clock {
            clock.advance(elapsed);
        }
        Ok(CampaignOutcome { targets, elapsed })
    }

    /// Builds the isolated environment of the campaign's single target
    /// without running a fuzzer — the entry point for hand-driven flows such
    /// as the BlueBorne replay.  Fuzzer, budget, oracle, executor and
    /// initiator-count settings do not apply (nothing is run, and a manual
    /// harness drives exactly one link); a clock set via
    /// [`CampaignBuilder::clock`] *does* apply and becomes the environment's
    /// clock, so an external handle observes the driven traffic's time.
    ///
    /// # Errors
    /// Same conditions as [`CampaignBuilder::run`], plus
    /// [`CampaignError::MultipleTargets`] when more than one target was
    /// added — a manual harness drives exactly one device.
    pub fn env(self) -> Result<TargetEnv, CampaignError> {
        let (mut plan, _, clock) = self.into_plan()?;
        if plan.target_count() > 1 {
            return Err(CampaignError::MultipleTargets {
                count: plan.target_count(),
            });
        }
        plan.link_plan = LinkPlan::Single;
        plan.build_env_on(0, clock.unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::L2FuzzTool;
    use btcore::TargetOracle;
    use btstack::profiles::ProfileId;

    #[test]
    fn empty_campaign_is_rejected() {
        assert!(matches!(
            Campaign::builder().run(),
            Err(CampaignError::NoTargets)
        ));
    }

    #[test]
    fn manual_env_rejects_multiple_targets() {
        let result = Campaign::builder()
            .targets([ProfileId::D1, ProfileId::D2].map(DeviceProfile::table5))
            .env();
        match result {
            Err(CampaignError::MultipleTargets { count }) => assert_eq!(count, 2),
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("multi-target env() must be rejected"),
        }
    }

    #[test]
    fn default_fuzzer_finds_the_pixel3_dos() {
        let outcome = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D2))
            .seed(11)
            .run()
            .expect("campaign runs");
        assert_eq!(outcome.targets.len(), 1);
        assert_eq!(outcome.vulnerable_count(), 1);
        let target = outcome.into_single();
        assert!(target.report.vulnerable());
        assert_eq!(target.report.fuzzer, "L2Fuzz");
        assert!(!target.trace.is_empty());
        assert!(target.elapsed > Duration::ZERO);
        assert_eq!(target.initiator_count(), 1);
        assert_eq!(target.campaign_seed, 11);
    }

    #[test]
    fn observer_clock_advances_by_the_campaign_elapsed_time() {
        let clock = SimClock::new();
        let outcome = Campaign::builder()
            .clock(clock.clone())
            .target(DeviceProfile::table5(ProfileId::D4))
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(clock.now(), outcome.elapsed);
    }

    #[test]
    fn serial_and_sharded_executors_agree_bit_for_bit() {
        fn run(sharded_threads: Option<usize>) -> Vec<String> {
            let builder = Campaign::builder()
                .targets([ProfileId::D2, ProfileId::D4, ProfileId::D5].map(DeviceProfile::table5))
                .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 2)))
                .seed(0xC0FFEE);
            match sharded_threads {
                None => builder.executor(SerialExecutor),
                Some(n) => builder.executor(ShardedExecutor::new(n)),
            }
            .run()
            .unwrap()
            .reports()
            .map(|r| r.to_json().unwrap())
            .collect()
        }
        let serial = run(None);
        assert_eq!(serial, run(Some(3)));
        assert_eq!(serial, run(Some(2)));
    }

    #[test]
    fn env_builds_a_manual_harness() {
        let mut env = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D8))
            .seed(5)
            .env()
            .expect("env builds");
        assert_eq!(env.meta.addr, env.profile.addr);
        assert!(env.link.device_alive());
        // The link is live: a ping crosses the air and lands in the trace.
        let frame = l2cap::packet::signaling_frame(
            btcore::Identifier(1),
            l2cap::command::Command::EchoRequest(l2cap::command::EchoRequest { data: vec![1] }),
        );
        let responses = env.link.send_frame(&frame);
        assert!(!responses.is_empty());
        assert!(env.trace().len() >= 2);
        assert!(env.oracle().ping().is_answered());
    }

    #[test]
    fn two_initiators_fuzz_one_target_concurrently() {
        let outcome = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D4))
            .initiators_per_target(2)
            .seed(21)
            .run()
            .expect("multi-initiator campaign runs")
            .into_single();
        assert_eq!(outcome.initiator_count(), 2);
        assert_eq!(outcome.secondary.len(), 1);
        // Both initiators drove a full campaign over their own link.
        assert!(!outcome.trace.is_empty());
        assert!(!outcome.secondary[0].trace.is_empty());
        assert_eq!(outcome.report.states_tested.len(), 13);
        assert_eq!(outcome.secondary[0].report.states_tested.len(), 13);
        // Independent seed streams → different packet bytes on each link.
        let frames = |t: &Trace| -> Vec<Vec<u8>> {
            t.records().iter().map(|r| r.frame.to_bytes()).collect()
        };
        assert_ne!(
            frames(&outcome.trace),
            frames(&outcome.secondary[0].trace),
            "initiators replayed identical traffic"
        );
        // The merged trace holds both initiators' traffic in time order.
        let merged = outcome.merged_trace();
        assert_eq!(
            merged.len(),
            outcome.trace.len() + outcome.secondary[0].trace.len()
        );
    }

    #[test]
    fn dual_transport_needs_a_dual_mode_target() {
        // D4 (iPhone, BR/EDR-only profile) cannot serve an LE link.
        let result = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D4))
            .dual_transport()
            .seed(9)
            .run();
        match result {
            Err(CampaignError::Connect { link_type, .. }) => {
                assert_eq!(link_type, LinkType::Le);
            }
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("dual transport against a single-mode target must fail"),
        }
    }

    #[test]
    fn chaos_campaign_replays_bit_for_bit() {
        let run = || {
            Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D2))
                .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 3)))
                .faults(FaultPlan::degraded(0.1, 0.05))
                .seed(0xBAD1)
                .run()
                .expect("chaos campaign runs")
                .into_single()
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.report.to_json().unwrap(),
            b.report.to_json().unwrap(),
            "same seed + same fault plan must replay bit for bit"
        );
        let bytes = |t: &Trace| -> Vec<Vec<u8>> {
            t.records().iter().map(|r| r.frame.to_bytes()).collect()
        };
        assert_eq!(bytes(&a.trace), bytes(&b.trace));
    }

    #[test]
    fn dump_read_failures_degrade_evidence_not_verdicts() {
        // With every dump read failing, a crash still gets detected (the
        // ping path is what classifies DoS/crash) — only the crash-dump
        // evidence bit degrades.
        let outcome = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D2))
            .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 3)))
            .faults(FaultPlan::none().with_dump_read_failure(1.0))
            .seed(11)
            .run()
            .expect("campaign runs")
            .into_single();
        assert!(outcome.report.vulnerable());
        assert!(
            outcome
                .report
                .findings
                .iter()
                .all(|f| !f.evidence.crash_dump),
            "a failing dump reader must never produce crash-dump evidence"
        );
    }

    #[test]
    fn watchdog_expiry_carries_a_typed_payload_through_the_campaign() {
        let result = std::panic::catch_unwind(|| {
            Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D2))
                .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 50)))
                .watchdog(Duration::from_micros(20_000))
                .seed(11)
                .run()
        });
        let payload = match result {
            Err(payload) => payload,
            Ok(_) => panic!("watchdog must fire well before 50 rounds finish"),
        };
        let expired = payload
            .downcast_ref::<hci::fault::WatchdogExpired>()
            .expect("payload is WatchdogExpired");
        assert!(expired.now_micros > expired.deadline_micros);
    }

    #[test]
    fn seed_sweep_runs_one_campaign_per_seed() {
        let sweep = SeedSweepExecutor::new([1u64, 2, 3]);
        assert_eq!(sweep.seeds().len(), 3);
        let outcome = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D5))
            .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 1)))
            .executor(sweep)
            .run()
            .expect("sweep runs");
        assert_eq!(outcome.targets.len(), 3);
        assert_eq!(
            outcome
                .targets
                .iter()
                .map(|t| t.campaign_seed)
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }
}
