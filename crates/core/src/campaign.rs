//! The unified campaign API: one entry point for every experiment.
//!
//! Every experiment in the repository — the Table V device survey, the
//! Table VI elapsed-time runs, the §IV-C/D fuzzer comparisons, the examples
//! and the integration tests — used to hand-roll the same ritual: build an
//! `AirMedium`, register devices, connect, attach a tap, construct a session
//! and run it.  [`Campaign::builder`] replaces that ritual with one fluent
//! entry point:
//!
//! ```
//! use btstack::profiles::{DeviceProfile, ProfileId};
//! use l2fuzz::campaign::Campaign;
//!
//! let outcome = Campaign::builder()
//!     .target(DeviceProfile::table5(ProfileId::D2))
//!     .seed(11)
//!     .run()
//!     .expect("campaign runs");
//! assert!(outcome.targets[0].report.vulnerable());
//! ```
//!
//! # Isolation and determinism
//!
//! Each target gets a fully isolated environment: its own [`SimClock`], its
//! own [`AirMedium`], and RNG streams derived from the campaign seed and the
//! target's position in the list.  Nothing is shared between targets, so the
//! per-target [`FuzzReport`]s and traces are a pure function of the campaign
//! seed — identical under [`SerialExecutor`] and under [`ShardedExecutor`]
//! at any thread count.  `tests/deterministic_replay.rs` enforces this
//! bit-for-bit.
//!
//! # Executors
//!
//! [`CampaignExecutor`] decides how the per-target environments are driven:
//! [`SerialExecutor`] runs them one after another on the calling thread (the
//! pre-campaign behaviour), [`ShardedExecutor`] partitions them across
//! worker threads — each shard owns the environments it runs, so the survey
//! and comparison experiments no longer serialize.

use std::sync::Arc;
use std::time::Duration;

use btcore::{BtError, DeviceMeta, SimClock};
use btstack::device::{share, DeviceOracle, SharedSimulatedDevice};
use btstack::profiles::DeviceProfile;
use hci::air::{AclLink, AirMedium};
use hci::link::{new_tap, LinkConfig, SharedTap};
use parking_lot::Mutex;
use sniffer::Trace;

use crate::config::FuzzConfig;
use crate::fuzzer::{FuzzCtx, Fuzzer, TxBudget};
use crate::report::FuzzReport;
use crate::scanner::ScanReport;
use crate::session::L2FuzzTool;

use btcore::FuzzRng;

/// Creates one fresh fuzzer instance per campaign target.
pub type FuzzerSpawner = Arc<dyn Fn() -> Box<dyn Fuzzer> + Send + Sync>;

/// What a finished builder decomposes into: the shareable plan, the executor
/// driving it, and the optional observer clock.
type PlanParts = (CampaignPlan, Box<dyn CampaignExecutor>, Option<SimClock>);

/// Whether campaign targets are observed out of band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OraclePolicy {
    /// Attach a [`DeviceOracle`] to every target (crash dumps + service
    /// status), as the original tool does via `adb`/`ssh`.
    #[default]
    OutOfBand,
    /// Fuzz blind: detection works from on-air behaviour alone.
    None,
}

/// Errors surfaced while setting up or running a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// `run()` was called without any target device.
    NoTargets,
    /// `env()` was called on a campaign with more than one target.
    MultipleTargets {
        /// How many targets the builder held.
        count: usize,
    },
    /// A target environment could not establish its ACL link.
    Connect {
        /// The target that failed.
        profile: Box<DeviceProfile>,
        /// The underlying connection error.
        source: BtError,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::NoTargets => write!(f, "campaign has no target devices"),
            CampaignError::MultipleTargets { count } => {
                write!(f, "manual env() needs exactly one target, got {count}")
            }
            CampaignError::Connect { profile, source } => {
                write!(
                    f,
                    "cannot connect to {} ({}): {source}",
                    profile.id, profile.name
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// A fully wired, isolated environment for one campaign target.
///
/// Campaign executors build one of these per target; hand-driven flows (the
/// BlueBorne replay, the Pixel 3 case study) obtain one through
/// [`CampaignBuilder::env`] instead of wiring an `AirMedium` by hand.
pub struct TargetEnv {
    /// The profile this environment instantiates.
    pub profile: DeviceProfile,
    /// Typed handle to the simulated device (for oracle access and crash
    /// dump inspection).
    pub device: SharedSimulatedDevice,
    /// The established ACL link, tap already attached.
    pub link: AclLink,
    /// The packet tap capturing all traffic on the link.
    pub tap: SharedTap,
    /// The environment's virtual clock (starts at zero).
    pub clock: SimClock,
    /// The target's metadata.
    pub meta: DeviceMeta,
    /// The per-target seed every RNG stream of this environment derives
    /// from.
    pub seed: u64,
}

impl TargetEnv {
    /// The out-of-band oracle over this environment's device.
    pub fn oracle(&self) -> DeviceOracle {
        DeviceOracle::new(self.device.clone())
    }

    /// Drains the traffic captured so far into a trace.  The capture moves —
    /// the tap starts over, so a later call only sees traffic driven after
    /// this one.
    pub fn trace(&self) -> Trace {
        Trace::from_tap(&self.tap)
    }
}

/// The immutable description of a campaign, shared by every executor shard.
pub struct CampaignPlan {
    targets: Vec<DeviceProfile>,
    spawner: FuzzerSpawner,
    budget: TxBudget,
    oracle: OraclePolicy,
    link_config: LinkConfig,
    seed: u64,
    auto_restart: bool,
}

/// Per-target seed derivation: the campaign seed and the target's position
/// feed one SplitMix64 step, so every target gets an independent stream.
fn derive_seed(base: u64, index: u64) -> u64 {
    btcore::splitmix64(base.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

impl CampaignPlan {
    /// Number of targets in the campaign.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    fn build_env(&self, index: usize) -> Result<TargetEnv, CampaignError> {
        self.build_env_on(index, SimClock::new())
    }

    fn build_env_on(&self, index: usize, clock: SimClock) -> Result<TargetEnv, CampaignError> {
        let profile = self.targets[index].clone();
        let seed = derive_seed(self.seed, index as u64);
        let mut air = AirMedium::new(clock.clone());
        let mut device = profile.build(clock.clone(), FuzzRng::seed_from(seed));
        device.set_auto_restart(self.auto_restart);
        let (device, adapter) = share(device);
        air.register_shared(adapter);
        let meta = {
            use hci::device::VirtualDevice;
            device.lock().meta()
        };
        let mut link = air
            .connect(
                profile.addr,
                self.link_config,
                FuzzRng::seed_from(seed ^ 0xA5A5),
            )
            .map_err(|source| CampaignError::Connect {
                profile: Box::new(profile.clone()),
                source,
            })?;
        let tap = new_tap();
        link.attach_tap(tap.clone());
        Ok(TargetEnv {
            profile,
            device,
            link,
            tap,
            clock,
            meta,
            seed,
        })
    }

    /// Builds the environment for target `index`, runs the campaign's fuzzer
    /// in it and collects the outcome.  This is the unit of work executors
    /// schedule; it touches no shared state, which is what makes sharding
    /// deterministic.
    pub fn run_target(&self, index: usize) -> Result<TargetOutcome, CampaignError> {
        let mut env = self.build_env(index)?;
        let mut oracle = match self.oracle {
            OraclePolicy::OutOfBand => Some(env.oracle()),
            OraclePolicy::None => None,
        };
        let mut fuzzer = (self.spawner)();
        let mut ctx = FuzzCtx::new(
            &mut env.link,
            env.clock.clone(),
            env.tap.clone(),
            env.meta.clone(),
            env.seed,
            self.budget,
            oracle.as_mut().map(|o| o as &mut dyn btcore::TargetOracle),
        );
        let report = fuzzer.fuzz(&mut ctx);
        let report = report.unwrap_or_else(|| skeleton_report(fuzzer.name(), &env));
        Ok(TargetOutcome {
            elapsed: env.clock.now(),
            trace: env.trace(),
            report,
            device: env.device,
            profile: env.profile,
        })
    }
}

/// Skeleton report for trace-only tools (the baselines): link statistics
/// only, no structured findings.
fn skeleton_report(name: &str, env: &TargetEnv) -> FuzzReport {
    FuzzReport {
        fuzzer: name.to_owned(),
        target: env.meta.clone(),
        scan: ScanReport {
            meta: env.meta.clone(),
            probes: Vec::new(),
            chosen_port: None,
        },
        states_tested: Vec::new(),
        packets_sent: env.link.frames_sent(),
        malformed_sent: 0,
        findings: Vec::new(),
        elapsed_secs: env.clock.now().as_secs(),
    }
}

/// What one target produced.
pub struct TargetOutcome {
    /// The target's profile.
    pub profile: DeviceProfile,
    /// The tool's report (synthesized from link statistics for trace-only
    /// baselines).
    pub report: FuzzReport,
    /// Every packet that crossed the target's link, in order.
    pub trace: Trace,
    /// Virtual time the target's environment consumed.
    pub elapsed: Duration,
    /// The simulated device, for post-campaign inspection (crash dumps,
    /// fired vulnerabilities, host status).
    pub device: SharedSimulatedDevice,
}

/// The result of a whole campaign, targets in the order they were added.
pub struct CampaignOutcome {
    /// One outcome per target.
    pub targets: Vec<TargetOutcome>,
    /// Campaign wall-clock: the longest per-target virtual time (targets run
    /// in parallel in the modelled world).
    pub elapsed: Duration,
}

impl CampaignOutcome {
    /// The per-target reports, in target order.
    pub fn reports(&self) -> impl Iterator<Item = &FuzzReport> {
        self.targets.iter().map(|t| &t.report)
    }

    /// Number of targets with at least one finding.
    pub fn vulnerable_count(&self) -> usize {
        self.targets
            .iter()
            .filter(|t| t.report.vulnerable())
            .count()
    }

    /// Consumes a single-target campaign's outcome.
    ///
    /// # Panics
    /// Panics if the campaign had more than one target.
    pub fn into_single(mut self) -> TargetOutcome {
        assert_eq!(self.targets.len(), 1, "campaign has multiple targets");
        self.targets.pop().expect("one target")
    }
}

/// Strategy for driving the per-target environments of a campaign.
pub trait CampaignExecutor: Send + Sync {
    /// Executor name for logs.
    fn name(&self) -> &'static str;

    /// Runs every target of `plan` and returns the outcomes in target order.
    ///
    /// # Errors
    /// Propagates the first [`CampaignError`] any target hit.
    fn execute(&self, plan: &CampaignPlan) -> Result<Vec<TargetOutcome>, CampaignError>;
}

/// Runs targets one after another on the calling thread; bit-for-bit the
/// behaviour the hand-rolled experiment harnesses had.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl CampaignExecutor for SerialExecutor {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn execute(&self, plan: &CampaignPlan) -> Result<Vec<TargetOutcome>, CampaignError> {
        (0..plan.target_count())
            .map(|i| plan.run_target(i))
            .collect()
    }
}

/// Distributes targets across worker threads.
///
/// Workers pull targets off a shared work index as they go idle, so skewed
/// per-target runtimes balance out.  Each target still runs in its own
/// isolated environment (own clock, own air medium, own RNG streams), so the
/// per-target results are identical to [`SerialExecutor`]'s at any thread
/// count — threading only changes wall-clock time.
#[derive(Debug, Clone, Copy)]
pub struct ShardedExecutor {
    threads: usize,
}

impl ShardedExecutor {
    /// Creates an executor with the given number of worker threads (at least
    /// one).
    pub fn new(threads: usize) -> Self {
        ShardedExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl CampaignExecutor for ShardedExecutor {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn execute(&self, plan: &CampaignPlan) -> Result<Vec<TargetOutcome>, CampaignError> {
        let n = plan.target_count();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            return SerialExecutor.execute(plan);
        }
        let slots: Vec<Mutex<Option<Result<TargetOutcome, CampaignError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        // Dynamic work index rather than static striping: per-target runtimes
        // are skewed by orders of magnitude (a hardened device burns its full
        // round cap while a fragile one falls instantly), so idle workers
        // pull the next pending target.  Determinism is untouched — each
        // target's environment is isolated and its outcome is keyed by index.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let failed = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let slots = &slots;
                let next = &next;
                let failed = &failed;
                scope.spawn(move || loop {
                    // Fail fast: once any target errors the whole campaign is
                    // doomed, so don't burn the remaining targets' runtimes.
                    if failed.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let outcome = plan.run_target(index);
                    if outcome.is_err() {
                        failed.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                    *slots[index].lock() = Some(outcome);
                });
            }
        });
        if failed.into_inner() {
            // Return the first error in target order.
            for slot in slots {
                if let Some(Err(e)) = slot.into_inner() {
                    return Err(e);
                }
            }
            unreachable!("a failure was flagged but no slot holds an error");
        }
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every worker fills its slots"))
            .collect()
    }
}

/// Marker type; use [`Campaign::builder`].
pub struct Campaign;

impl Campaign {
    /// Starts describing a campaign.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::default()
    }
}

/// Fluent description of a campaign; finish with [`CampaignBuilder::run`]
/// (or [`CampaignBuilder::env`] for hand-driven flows).
pub struct CampaignBuilder {
    clock: Option<SimClock>,
    targets: Vec<DeviceProfile>,
    spawner: Option<FuzzerSpawner>,
    budget: TxBudget,
    oracle: OraclePolicy,
    link_config: LinkConfig,
    seed: u64,
    auto_restart: bool,
    executor: Box<dyn CampaignExecutor>,
}

impl Default for CampaignBuilder {
    fn default() -> Self {
        CampaignBuilder {
            clock: None,
            targets: Vec::new(),
            spawner: None,
            budget: TxBudget::unlimited(),
            oracle: OraclePolicy::OutOfBand,
            link_config: LinkConfig::default(),
            seed: FuzzConfig::default().seed,
            auto_restart: false,
            executor: Box::new(SerialExecutor),
        }
    }
}

impl CampaignBuilder {
    /// Observes the campaign on `clock`: after the run it is advanced by the
    /// campaign's elapsed time (the longest per-target time — targets run on
    /// isolated clocks, in parallel in the modelled world).
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Adds one target device.
    pub fn target(mut self, profile: DeviceProfile) -> Self {
        self.targets.push(profile);
        self
    }

    /// Adds several target devices.
    pub fn targets(mut self, profiles: impl IntoIterator<Item = DeviceProfile>) -> Self {
        self.targets.extend(profiles);
        self
    }

    /// Sets the tool: `spawn` is called once per target so every environment
    /// gets a fresh instance.  Defaults to a single L2Fuzz detection session
    /// with the paper's configuration.
    pub fn fuzzer(mut self, spawn: impl Fn() -> Box<dyn Fuzzer> + Send + Sync + 'static) -> Self {
        self.spawner = Some(Arc::new(spawn));
        self
    }

    /// Sets the per-target transmission budget (default: unlimited).
    ///
    /// The unlimited default suits the default tool (L2Fuzz detection, which
    /// stops at a finding or its round cap); budget-driven tools — the
    /// trace-only baselines and [`L2FuzzTool::comparison`] — run until the
    /// budget is spent or the target dies, so give them a finite budget or
    /// the campaign will not terminate.
    pub fn budget(mut self, budget: TxBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the out-of-band oracle policy (default:
    /// [`OraclePolicy::OutOfBand`]).
    pub fn oracle(mut self, oracle: OraclePolicy) -> Self {
        self.oracle = oracle;
        self
    }

    /// Sets the physical-layer link behaviour (default:
    /// [`LinkConfig::default`]).
    pub fn link_config(mut self, config: LinkConfig) -> Self {
        self.link_config = config;
        self
    }

    /// Sets the campaign seed; every per-target RNG stream derives from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Restarts each target's Bluetooth service after a vulnerability fires
    /// (the tester's "manual reset"; the long comparison runs need it).
    pub fn auto_restart(mut self, enabled: bool) -> Self {
        self.auto_restart = enabled;
        self
    }

    /// Sets the executor (default: [`SerialExecutor`]).
    pub fn executor(mut self, executor: impl CampaignExecutor + 'static) -> Self {
        self.executor = Box::new(executor);
        self
    }

    fn into_plan(self) -> Result<PlanParts, CampaignError> {
        if self.targets.is_empty() {
            return Err(CampaignError::NoTargets);
        }
        let spawner = self.spawner.unwrap_or_else(|| {
            Arc::new(|| {
                Box::new(L2FuzzTool::detection(FuzzConfig::default(), 1)) as Box<dyn Fuzzer>
            })
        });
        Ok((
            CampaignPlan {
                targets: self.targets,
                spawner,
                budget: self.budget,
                oracle: self.oracle,
                link_config: self.link_config,
                seed: self.seed,
                auto_restart: self.auto_restart,
            },
            self.executor,
            self.clock,
        ))
    }

    /// Runs the campaign and collects every target's outcome.
    ///
    /// # Errors
    /// Returns [`CampaignError::NoTargets`] for an empty target list and
    /// [`CampaignError::Connect`] when a target's link cannot be
    /// established.
    pub fn run(self) -> Result<CampaignOutcome, CampaignError> {
        let (plan, executor, clock) = self.into_plan()?;
        let targets = executor.execute(&plan)?;
        let elapsed = targets.iter().map(|t| t.elapsed).max().unwrap_or_default();
        if let Some(clock) = clock {
            clock.advance(elapsed);
        }
        Ok(CampaignOutcome { targets, elapsed })
    }

    /// Builds the isolated environment of the campaign's single target
    /// without running a fuzzer — the entry point for hand-driven flows such
    /// as the BlueBorne replay.  Fuzzer, budget, oracle and executor
    /// settings do not apply (nothing is run); a clock set via
    /// [`CampaignBuilder::clock`] *does* apply and becomes the environment's
    /// clock, so an external handle observes the driven traffic's time.
    ///
    /// # Errors
    /// Same conditions as [`CampaignBuilder::run`], plus
    /// [`CampaignError::MultipleTargets`] when more than one target was
    /// added — a manual harness drives exactly one device.
    pub fn env(self) -> Result<TargetEnv, CampaignError> {
        let (plan, _, clock) = self.into_plan()?;
        if plan.target_count() > 1 {
            return Err(CampaignError::MultipleTargets {
                count: plan.target_count(),
            });
        }
        plan.build_env_on(0, clock.unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::L2FuzzTool;
    use btcore::TargetOracle;
    use btstack::profiles::ProfileId;

    #[test]
    fn empty_campaign_is_rejected() {
        assert!(matches!(
            Campaign::builder().run(),
            Err(CampaignError::NoTargets)
        ));
    }

    #[test]
    fn manual_env_rejects_multiple_targets() {
        let result = Campaign::builder()
            .targets([ProfileId::D1, ProfileId::D2].map(DeviceProfile::table5))
            .env();
        match result {
            Err(CampaignError::MultipleTargets { count }) => assert_eq!(count, 2),
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("multi-target env() must be rejected"),
        }
    }

    #[test]
    fn default_fuzzer_finds_the_pixel3_dos() {
        let outcome = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D2))
            .seed(11)
            .run()
            .expect("campaign runs");
        assert_eq!(outcome.targets.len(), 1);
        assert_eq!(outcome.vulnerable_count(), 1);
        let target = outcome.into_single();
        assert!(target.report.vulnerable());
        assert_eq!(target.report.fuzzer, "L2Fuzz");
        assert!(!target.trace.is_empty());
        assert!(target.elapsed > Duration::ZERO);
    }

    #[test]
    fn observer_clock_advances_by_the_campaign_elapsed_time() {
        let clock = SimClock::new();
        let outcome = Campaign::builder()
            .clock(clock.clone())
            .target(DeviceProfile::table5(ProfileId::D4))
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(clock.now(), outcome.elapsed);
    }

    #[test]
    fn serial_and_sharded_executors_agree_bit_for_bit() {
        fn run(sharded_threads: Option<usize>) -> Vec<String> {
            let builder = Campaign::builder()
                .targets([ProfileId::D2, ProfileId::D4, ProfileId::D5].map(DeviceProfile::table5))
                .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 2)))
                .seed(0xC0FFEE);
            match sharded_threads {
                None => builder.executor(SerialExecutor),
                Some(n) => builder.executor(ShardedExecutor::new(n)),
            }
            .run()
            .unwrap()
            .reports()
            .map(|r| r.to_json().unwrap())
            .collect()
        }
        let serial = run(None);
        assert_eq!(serial, run(Some(3)));
        assert_eq!(serial, run(Some(2)));
    }

    #[test]
    fn env_builds_a_manual_harness() {
        let mut env = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D8))
            .seed(5)
            .env()
            .expect("env builds");
        assert_eq!(env.meta.addr, env.profile.addr);
        assert!(env.link.device_alive());
        // The link is live: a ping crosses the air and lands in the trace.
        let frame = l2cap::packet::signaling_frame(
            btcore::Identifier(1),
            l2cap::command::Command::EchoRequest(l2cap::command::EchoRequest { data: vec![1] }),
        );
        let responses = env.link.send_frame(&frame);
        assert!(!responses.is_empty());
        assert!(env.trace().len() >= 2);
        assert!(env.oracle().ping().is_answered());
    }
}
