//! Fuzzing reports and log files.
//!
//! The original tool stores its fuzzing results in a log file; the
//! reproduction writes structured JSON reports with the same content: the
//! target's metadata, the scan results, every state that was tested, and one
//! entry per detected vulnerability with the packet that triggered it.

use btcore::clock::PaperDuration;
use btcore::DeviceMeta;
use l2cap::code::CommandCode;
use l2cap::jobs::Job;
use l2cap::state::ChannelState;
use serde::{Deserialize, Serialize};
use std::time::Duration;

use crate::detector::VulnerabilityEvidence;
use crate::scanner::ScanReport;

/// One detected vulnerability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VulnerabilityFinding {
    /// State the target was in when the packet was sent.
    pub state: ChannelState,
    /// The state's job.
    pub job: Job,
    /// Command whose mutation triggered the finding.
    pub command: CommandCode,
    /// Hex dump of the malformed packet (C-frame bytes).
    pub packet_hex: String,
    /// The detection evidence.
    pub evidence: VulnerabilityEvidence,
    /// Virtual elapsed time from campaign start to detection, in seconds.
    pub elapsed_secs: u64,
}

impl VulnerabilityFinding {
    /// Formats the elapsed time the way Table VI prints it.
    pub fn elapsed_display(&self) -> String {
        PaperDuration(self.elapsed_secs).to_string()
    }
}

/// The full report of one fuzzing campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzReport {
    /// Fuzzer name.
    pub fuzzer: String,
    /// Target device metadata.
    pub target: DeviceMeta,
    /// The target-scanning results.
    pub scan: ScanReport,
    /// States the campaign parked the target in (in test order).
    pub states_tested: Vec<ChannelState>,
    /// Packets transmitted (normal + malformed).
    pub packets_sent: u64,
    /// Malformed packets transmitted.
    pub malformed_sent: u64,
    /// Detected vulnerabilities.
    pub findings: Vec<VulnerabilityFinding>,
    /// Total virtual elapsed time in seconds.
    pub elapsed_secs: u64,
}

impl FuzzReport {
    /// Returns `true` if at least one vulnerability was found.
    pub fn vulnerable(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Elapsed time to the first finding, if any, formatted like Table VI.
    pub fn time_to_first_finding(&self) -> Option<String> {
        self.findings.first().map(|f| f.elapsed_display())
    }

    /// Serializes the report as pretty-printed JSON (the reproduction's log
    /// file format), written through the streaming writer — the document is
    /// built straight into the output buffer, never as an owned `Value`
    /// tree, and is byte-identical to what the tree path produced.
    ///
    /// # Errors
    /// Kept for API stability; the streaming writer cannot fail for this
    /// type.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        Ok(serde_json::to_string_pretty_streamed(self))
    }

    /// Parses a report back from JSON through the streaming reader — the
    /// symmetric path to [`FuzzReport::to_json`], with no intermediate
    /// `Value` tree.
    ///
    /// # Errors
    /// Returns a `serde_json::Error` if the input is not a valid report.
    pub fn from_json(json: &str) -> Result<FuzzReport, serde_json::Error> {
        serde_json::from_str_streamed(json)
    }

    /// One-line Table VI-style row: `Vuln? / description / elapsed`.
    pub fn table6_row(&self) -> String {
        match self.findings.first() {
            Some(f) => format!(
                "{:<12} Vuln: Yes  ({})  elapsed {}",
                self.target.name,
                f.evidence.description,
                f.elapsed_display()
            ),
            None => format!("{:<12} Vuln: No", self.target.name),
        }
    }

    /// Total elapsed time as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_secs(self.elapsed_secs)
    }
}

impl serde_json::StreamSerialize for VulnerabilityFinding {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("state", &self.state)
            .field("job", &self.job)
            .field("command", &self.command)
            .field("packet_hex", &self.packet_hex)
            .field("evidence", &self.evidence)
            .field("elapsed_secs", &self.elapsed_secs)
            .end_object();
    }
}

impl serde_json::StreamSerialize for FuzzReport {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("fuzzer", &self.fuzzer)
            .field("target", &self.target)
            .field("scan", &self.scan)
            .field("states_tested", &self.states_tested)
            .field("packets_sent", &self.packets_sent)
            .field("malformed_sent", &self.malformed_sent)
            .field("findings", &self.findings)
            .field("elapsed_secs", &self.elapsed_secs)
            .end_object();
    }
}

impl serde_json::StreamDeserialize for VulnerabilityFinding {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let state = r.key("state")?.value()?;
        let job = r.key("job")?.value()?;
        let command = r.key("command")?.value()?;
        let packet_hex = r.key("packet_hex")?.value()?;
        let evidence = r.key("evidence")?.value()?;
        let elapsed_secs = r.key("elapsed_secs")?.value()?;
        r.end_object()?;
        Ok(VulnerabilityFinding {
            state,
            job,
            command,
            packet_hex,
            evidence,
            elapsed_secs,
        })
    }
}

impl serde_json::StreamDeserialize for FuzzReport {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let fuzzer = r.key("fuzzer")?.value()?;
        let target = r.key("target")?.value()?;
        let scan = r.key("scan")?.value()?;
        let states_tested = r.key("states_tested")?.value()?;
        let packets_sent = r.key("packets_sent")?.value()?;
        let malformed_sent = r.key("malformed_sent")?.value()?;
        let findings = r.key("findings")?.value()?;
        let elapsed_secs = r.key("elapsed_secs")?.value()?;
        r.end_object()?;
        Ok(FuzzReport {
            fuzzer,
            target,
            scan,
            states_tested,
            packets_sent,
            malformed_sent,
            findings,
            elapsed_secs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{PortProbe, PortStatus};
    use btcore::{BdAddr, ConnectionError, DeviceClass, Psm};

    fn sample_report(with_finding: bool) -> FuzzReport {
        let meta = DeviceMeta::new(
            BdAddr::new([1, 2, 3, 4, 5, 6]),
            "Pixel 3",
            DeviceClass::Smartphone,
        );
        let findings = if with_finding {
            vec![VulnerabilityFinding {
                state: ChannelState::WaitConfigReqRsp,
                job: Job::Configuration,
                command: CommandCode::ConfigureRequest,
                packet_hex: "04 06 08 00 8F 7B".to_owned(),
                evidence: VulnerabilityEvidence {
                    error: ConnectionError::Failed,
                    ping_failed: true,
                    crash_dump: true,
                    description: "DoS".to_owned(),
                },
                elapsed_secs: 85,
            }]
        } else {
            Vec::new()
        };
        FuzzReport {
            fuzzer: "L2Fuzz".to_owned(),
            target: meta.clone(),
            scan: ScanReport {
                meta,
                probes: vec![PortProbe {
                    psm: Psm::SDP,
                    status: PortStatus::OpenWithoutPairing,
                }],
                chosen_port: Some(Psm::SDP),
            },
            states_tested: vec![ChannelState::Closed, ChannelState::WaitConfigReqRsp],
            packets_sent: 1234,
            malformed_sent: 900,
            findings,
            elapsed_secs: 90,
        }
    }

    #[test]
    fn json_roundtrip() {
        let report = sample_report(true);
        let json = report.to_json().unwrap();
        let back = FuzzReport::from_json(&json).unwrap();
        assert_eq!(report, back);
        assert!(json.contains("Pixel 3"));
    }

    #[test]
    fn table6_row_shape() {
        let with = sample_report(true);
        assert!(with.vulnerable());
        assert!(with.table6_row().contains("Vuln: Yes"));
        assert!(with.table6_row().contains("DoS"));
        assert_eq!(with.time_to_first_finding().unwrap(), "1 m 25 s");

        let without = sample_report(false);
        assert!(!without.vulnerable());
        assert!(without.table6_row().contains("Vuln: No"));
        assert!(without.time_to_first_finding().is_none());
    }

    #[test]
    fn elapsed_conversion() {
        assert_eq!(sample_report(true).elapsed(), Duration::from_secs(90));
    }
}
