//! Bounded retry with virtual-time backoff.
//!
//! On a lossy link a single unanswered probe is not evidence of a dead
//! target — L2Fuzz on real hardware retries its liveness checks before
//! declaring a DoS.  A [`RetryPolicy`] gives the drivers (the state guide's
//! channel-open preludes and the detector's ping test) the same tolerance:
//! up to `max_attempts` tries, waiting `backoff_micros` of *virtual* time
//! between them (scaled by `backoff_factor` per retry), so retried schedules
//! stay exactly as deterministic as everything else.

use serde::{Deserialize, Serialize};

/// Retry behaviour of the fault-tolerant drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Virtual-time wait before the first retry, in microseconds.
    pub backoff_micros: u64,
    /// Multiplier applied to the backoff per additional retry (minimum 1).
    pub backoff_factor: u32,
}

impl RetryPolicy {
    /// No retries: a single attempt, the pre-resilience behaviour.
    pub const fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_micros: 0,
            backoff_factor: 1,
        }
    }

    /// The default tolerance for a degraded link: eight attempts with
    /// exponential backoff starting at 500 µs of virtual time.  A detection
    /// session probes liveness after every silent test packet — hundreds of
    /// times per campaign — so the per-probe false-timeout chance must be
    /// tiny: at combined 20% loss + corruption, eight attempts put it near
    /// 0.2⁸ ≈ 3·10⁻⁶, keeping whole campaigns free of false DoS verdicts.
    pub const fn lossy_link() -> Self {
        RetryPolicy {
            max_attempts: 8,
            backoff_micros: 500,
            backoff_factor: 2,
        }
    }

    /// `attempts` tries with a flat virtual-time backoff between them.
    pub const fn flat(attempts: u32, backoff_micros: u64) -> Self {
        RetryPolicy {
            max_attempts: attempts,
            backoff_micros,
            backoff_factor: 1,
        }
    }

    /// Returns `true` if this policy never retries.
    pub fn is_none(&self) -> bool {
        self.max_attempts <= 1
    }

    /// The virtual-time backoff before retry number `retry` (0-based).
    pub fn backoff_for(&self, retry: u32) -> u64 {
        let factor = u64::from(self.backoff_factor.max(1)).saturating_pow(retry);
        self.backoff_micros.saturating_mul(factor)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_single_attempt() {
        let policy = RetryPolicy::none();
        assert!(policy.is_none());
        assert_eq!(policy.max_attempts, 1);
        assert_eq!(RetryPolicy::default(), policy);
    }

    #[test]
    fn lossy_link_backs_off_exponentially() {
        let policy = RetryPolicy::lossy_link();
        assert!(!policy.is_none());
        assert_eq!(policy.backoff_for(0), 500);
        assert_eq!(policy.backoff_for(1), 1_000);
        assert_eq!(policy.backoff_for(2), 2_000);
        assert_eq!(policy.backoff_for(6), 32_000);
    }

    #[test]
    fn flat_policy_keeps_a_constant_backoff() {
        let policy = RetryPolicy::flat(3, 500);
        assert_eq!(policy.max_attempts, 3);
        assert_eq!(policy.backoff_for(0), 500);
        assert_eq!(policy.backoff_for(5), 500);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let policy = RetryPolicy {
            max_attempts: 64,
            backoff_micros: u64::MAX / 2,
            backoff_factor: u32::MAX,
        };
        assert_eq!(policy.backoff_for(40), u64::MAX);
    }

    #[test]
    fn policy_roundtrips_through_serde() {
        let policy = RetryPolicy::lossy_link();
        let json = serde_json::to_string(&policy).unwrap();
        let back: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, policy);
    }
}
