//! The L2Fuzz session: orchestration of the four phases (Fig. 5).

use btcore::{DeviceMeta, FuzzRng, SimClock, TargetOracle};
use hci::medium::LinkHandle;
use l2cap::jobs::job_of;
use l2cap::state::ChannelState;

use crate::config::FuzzConfig;
use crate::detector::{DetectionVerdict, VulnerabilityDetector};
use crate::fuzzer::Fuzzer;
use crate::guide::{ChannelContext, StateGuide};
use crate::mutator::CoreFieldMutator;
use crate::queue::{PacketKind, PacketQueue};
use crate::report::{FuzzReport, VulnerabilityFinding};
use crate::scanner::TargetScanner;

/// A full L2Fuzz campaign against one target device.
pub struct L2FuzzSession {
    config: FuzzConfig,
    clock: SimClock,
    retry: crate::retry::RetryPolicy,
}

impl L2FuzzSession {
    /// Creates a session with the given configuration; `clock` is the shared
    /// virtual clock used for elapsed-time reporting.
    pub fn new(config: FuzzConfig, clock: SimClock) -> Self {
        L2FuzzSession {
            config,
            clock,
            retry: crate::retry::RetryPolicy::none(),
        }
    }

    /// Attaches a retry policy to the session's drivers (state guide and
    /// detector) for fault-tolerant campaigns over degraded links.
    pub fn with_retry(mut self, retry: crate::retry::RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The session configuration.
    pub fn config(&self) -> &FuzzConfig {
        &self.config
    }

    /// Runs the campaign over an established link.
    ///
    /// `oracle` is the optional out-of-band view of the target (crash dumps
    /// and service status); without it the detector still works from the
    /// target's on-air behaviour alone.
    pub fn run(
        &mut self,
        link: &mut LinkHandle,
        meta: DeviceMeta,
        mut oracle: Option<&mut dyn TargetOracle>,
    ) -> FuzzReport {
        let started = self.clock.now().as_secs();
        let link_type = meta.link_type;
        let mut rng = FuzzRng::seed_from(self.config.seed);
        let mut scanner = TargetScanner::new();
        let mut guide = StateGuide::new().with_retry(self.retry);
        let mut mutator = CoreFieldMutator::with_options(
            rng.fork(1),
            self.config.core_fields_only,
            self.config.append_garbage,
            self.config.max_garbage_len,
        );
        mutator.set_link(link_type);
        mutator.set_config_option_mutation(self.config.mutate_config_options);
        let mut detector = VulnerabilityDetector::new_on(link_type).with_retry(self.retry);
        let mut queue = PacketQueue::new();

        // Phase 1: target scanning.
        let scan = scanner.scan(meta.clone(), link);
        let psm = scan.chosen_port.unwrap_or(btcore::Psm::SDP);

        let mut report = FuzzReport {
            fuzzer: "L2Fuzz".to_owned(),
            target: meta,
            scan,
            states_tested: Vec::new(),
            packets_sent: 0,
            malformed_sent: 0,
            findings: Vec::new(),
            elapsed_secs: 0,
        };

        // Phases 2-4, repeated per reachable state (of the target's link
        // type — an LE target exposes the credit-based subset).
        let states: Vec<ChannelState> = if self.config.state_guiding {
            match link_type {
                btcore::LinkType::BrEdr => ChannelState::REACHABLE_FROM_INITIATOR.to_vec(),
                btcore::LinkType::Le => ChannelState::REACHABLE_FROM_INITIATOR_LE.to_vec(),
            }
        } else {
            vec![ChannelState::Closed]
        };

        'states: for state in states {
            // Phase 2: state guiding.
            let ctx = if self.config.state_guiding {
                let driven = match link_type {
                    btcore::LinkType::BrEdr => guide.drive_to(link, psm, state),
                    btcore::LinkType::Le => guide.drive_to_le(link, psm, state),
                };
                match driven {
                    Some(ctx) => ctx,
                    None => continue,
                }
            } else {
                ChannelContext::closed(psm)
            };
            report.states_tested.push(state);

            // Phase 3: core field mutating.
            let job = job_of(state);
            let commands = if self.config.state_guiding {
                if self.config.generous_boundaries {
                    job.generous_valid_commands_on(link_type)
                } else {
                    job.valid_commands_on(link_type)
                }
            } else {
                // Without state guiding, commands are picked at random per
                // packet (dumb strategy used by the ablation).
                l2cap::code::CommandCode::ALL.to_vec()
            };
            let packets = mutator.generate(
                &commands,
                self.config.packets_per_command,
                &ctx,
                guide.next_identifier(),
            );

            // Phase 4: transmit and detect.
            for packet in packets {
                if self.config.max_packets > 0
                    && queue.sent() + guide.transition_packets_sent() + detector.pings_sent()
                        >= self.config.max_packets as u64
                {
                    break 'states;
                }
                let outcome = queue.send_now(link, &packet, PacketKind::Malformed);
                report.malformed_sent += 1;
                let verdict = match oracle {
                    Some(ref mut o) => detector.check(link, Some(&mut **o), outcome.silent),
                    None => detector.check(link, None, outcome.silent),
                };
                if let DetectionVerdict::Vulnerable(evidence) = verdict {
                    let finding = VulnerabilityFinding {
                        state,
                        job,
                        command: l2cap::code::CommandCode::from_u8(packet.code)
                            .unwrap_or(l2cap::code::CommandCode::CommandReject),
                        packet_hex: btcore::codec::hex_dump(&packet.to_bytes()),
                        evidence,
                        elapsed_secs: self.clock.now().as_secs().saturating_sub(started),
                    };
                    report.findings.push(finding);
                    if self.config.stop_at_first_vulnerability {
                        break 'states;
                    }
                }
            }

            // Tear the channel down so the next state starts clean.
            guide.disconnect(link, ctx);
        }

        report.packets_sent =
            queue.sent() + guide.transition_packets_sent() + detector.pings_sent();
        report.elapsed_secs = self.clock.now().as_secs().saturating_sub(started);
        report
    }
}

/// [`Fuzzer`]-trait adapter over [`L2FuzzSession`], used by every campaign.
///
/// The tool runs sessions back to back inside its [`FuzzCtx`], deriving each
/// round's seed from the context's per-target seed stream.  Two standing
/// configurations cover the paper's experiments:
///
/// * [`L2FuzzTool::detection`] — Table VI methodology: repeat campaigns
///   (with the out-of-band oracle from the context) until a vulnerability is
///   found or the round cap is reached.
/// * [`L2FuzzTool::comparison`] — §IV-C/D methodology: never stop early,
///   keep fuzzing until the context's packet budget is spent.
pub struct L2FuzzTool {
    config: FuzzConfig,
    max_rounds: usize,
}

impl L2FuzzTool {
    /// Creates a tool that runs sessions with `config` until the context's
    /// budget is spent (no round cap).
    pub fn new(config: FuzzConfig) -> Self {
        L2FuzzTool {
            config,
            max_rounds: usize::MAX,
        }
    }

    /// Detection mode (Table VI): stop at the first vulnerability, give up
    /// after `max_rounds` campaigns.
    pub fn detection(config: FuzzConfig, max_rounds: usize) -> Self {
        L2FuzzTool { config, max_rounds }
    }

    /// Comparison mode (§IV-C/D): never stop early, burn the whole budget.
    pub fn comparison() -> Self {
        L2FuzzTool::new(FuzzConfig::budget_driven())
    }
}

impl Fuzzer for L2FuzzTool {
    fn name(&self) -> &'static str {
        "L2Fuzz"
    }

    fn fuzz(&mut self, ctx: &mut crate::fuzzer::FuzzCtx<'_>) -> Option<FuzzReport> {
        let mut merged: Option<FuzzReport> = None;
        let mut round = 0u64;
        while (round as usize) < self.max_rounds {
            let remaining = ctx.remaining();
            if remaining == Some(0) {
                break;
            }
            let mut config = self.config.clone();
            // Domain-separated session seed: the raw per-target seed drives
            // the simulated device's own RNG, so round seeds come from an
            // independent stream (0x4C32 = "L2").  The configured seed stays
            // a real input — two tools with different config seeds diverge
            // under the same campaign seed.
            config.seed = ctx
                .stream_seed(self.config.seed ^ 0x4C32)
                .wrapping_add(round);
            if let Some(remaining) = remaining {
                config.max_packets = if config.max_packets == 0 {
                    remaining as usize
                } else {
                    config.max_packets.min(remaining as usize)
                };
            }
            let before = ctx.link.frames_sent();
            let round_start_secs = ctx.clock.now().as_secs();
            let meta = ctx.meta.clone();
            let mut session = L2FuzzSession::new(config, ctx.clock.clone()).with_retry(ctx.retry);
            let (link, oracle) = ctx.link_and_oracle();
            let mut report = session.run(link, meta, oracle);
            // Report elapsed times relative to the whole experiment (the
            // environment's clock), not just this round: the session stamped
            // each finding with its round-relative detection time.
            report.elapsed_secs = ctx.clock.now().as_secs();
            for finding in &mut report.findings {
                finding.elapsed_secs += round_start_secs;
            }
            let vulnerable = report.vulnerable();
            let stalled = ctx.link.frames_sent() == before;
            // Merge rounds instead of keeping only the last one: in
            // comparison mode a finding from an early round must survive the
            // budget-burning rounds that follow it.
            match merged {
                None => merged = Some(report),
                Some(ref mut total) => {
                    total.packets_sent += report.packets_sent;
                    total.malformed_sent += report.malformed_sent;
                    for state in report.states_tested {
                        if !total.states_tested.contains(&state) {
                            total.states_tested.push(state);
                        }
                    }
                    total.findings.extend(report.findings);
                    total.elapsed_secs = report.elapsed_secs;
                }
            }
            round += 1;
            if vulnerable && self.config.stop_at_first_vulnerability {
                break;
            }
            if stalled {
                // Nothing went out this round (target down) — stop burning
                // the budget.
                break;
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::SimClock;
    use btstack::device::{share, DeviceOracle, SharedSimulatedDevice};
    use btstack::profiles::{DeviceProfile, ProfileId};
    use hci::link::LinkConfig;
    use hci::medium::{EventMedium, Medium};

    fn setup(
        id: ProfileId,
        seed: u64,
    ) -> (SharedSimulatedDevice, LinkHandle, DeviceMeta, SimClock) {
        let clock = SimClock::new();
        let mut air = EventMedium::new(clock.clone());
        let profile = DeviceProfile::table5(id);
        let (shared, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(seed)));
        air.register_shared(adapter);
        let meta = air.inquiry().pop().unwrap();
        let link = air
            .connect(
                profile.addr,
                LinkConfig::default(),
                FuzzRng::seed_from(seed + 1),
            )
            .unwrap();
        (shared, link, meta, clock)
    }

    #[test]
    fn l2fuzz_finds_the_pixel3_dos_and_stops() {
        let (shared, mut link, meta, clock) = setup(ProfileId::D2, 100);
        let mut oracle = DeviceOracle::new(shared);
        let mut session = L2FuzzSession::new(FuzzConfig::default(), clock);
        let report = session.run(&mut link, meta, Some(&mut oracle));
        assert!(report.vulnerable(), "the seeded Pixel 3 DoS must be found");
        let finding = &report.findings[0];
        assert_eq!(finding.evidence.description, "DoS");
        assert!(finding.evidence.crash_dump);
        assert!(report.packets_sent > 0);
        assert!(report.malformed_sent > 0);
    }

    #[test]
    fn l2fuzz_reports_no_findings_on_hardened_devices() {
        for id in [ProfileId::D4, ProfileId::D6, ProfileId::D7] {
            let (shared, mut link, meta, clock) = setup(id, 200);
            let mut oracle = DeviceOracle::new(shared);
            let mut session = L2FuzzSession::new(FuzzConfig::default(), clock);
            let report = session.run(&mut link, meta, Some(&mut oracle));
            assert!(!report.vulnerable(), "{id} must have no findings");
            assert!(report.states_tested.len() >= 10);
        }
    }

    #[test]
    fn max_packets_budget_is_respected() {
        let (_shared, mut link, meta, clock) = setup(ProfileId::D4, 300);
        let mut config = FuzzConfig::comparison(200, 300);
        config.stop_at_first_vulnerability = false;
        let mut session = L2FuzzSession::new(config, clock);
        let report = session.run(&mut link, meta, None);
        // Budget counts malformed + transition + ping packets; allow a small
        // overshoot for the final in-flight exchange.
        assert!(report.packets_sent <= 230, "sent {}", report.packets_sent);
    }

    #[test]
    fn disabling_state_guiding_tests_only_the_closed_state() {
        let (_shared, mut link, meta, clock) = setup(ProfileId::D4, 400);
        let config = FuzzConfig {
            max_packets: 300,
            ..FuzzConfig::default()
        }
        .without_state_guiding();
        let mut session = L2FuzzSession::new(config, clock);
        let report = session.run(&mut link, meta, None);
        assert_eq!(report.states_tested, vec![ChannelState::Closed]);
    }

    #[test]
    fn report_elapsed_time_is_positive_and_grows_with_port_count() {
        let (shared_a, mut link_a, meta_a, clock_a) = setup(ProfileId::D5, 500);
        let mut oracle_a = DeviceOracle::new(shared_a);
        let report_a = L2FuzzSession::new(FuzzConfig::default(), clock_a).run(
            &mut link_a,
            meta_a,
            Some(&mut oracle_a),
        );
        assert!(report_a.vulnerable());
        assert!(report_a.findings[0].elapsed_secs < 24 * 3600);
    }
}
