//! Workspace-level façade for the L2Fuzz reproduction.
//!
//! This crate only exists to host the runnable examples under `examples/` and
//! the cross-crate integration tests under `tests/`; the functionality lives
//! in the member crates (`btcore`, `l2cap`, `hci`, `btstack`, `l2fuzz`,
//! `baselines`, `sniffer`, `bench`, `analysis`, `service`).
//!
//! Every member is re-exported, so depending on `l2fuzz-repro` alone gives
//! access to the whole reproduction:
//!
//! ```
//! use l2fuzz_repro::{btcore, l2cap, l2fuzz};
//!
//! let addr: btcore::BdAddr = "AA:BB:CC:11:22:33".parse().unwrap();
//! assert_eq!(addr.oui().to_string(), "AA:BB:CC");
//! assert!(l2cap::ranges::is_abnormal_psm(btcore::Psm(0x0002).0));
//! assert_eq!(l2fuzz::FuzzConfig::default().seed, l2fuzz::FuzzConfig::default().seed);
//! ```

#![forbid(unsafe_code)]

pub use ::bench;
pub use analysis;
pub use baselines;
pub use btcore;
pub use btstack;
pub use hci;
pub use l2cap;
pub use l2fuzz;
pub use service;
pub use sniffer;
