//! Workspace-level façade for the L2Fuzz reproduction.
//!
//! This crate only exists to host the runnable examples under `examples/` and
//! the cross-crate integration tests under `tests/`; the functionality lives
//! in the member crates (`btcore`, `l2cap`, `hci`, `btstack`, `l2fuzz`,
//! `baselines`, `sniffer`).

#![forbid(unsafe_code)]

pub use baselines;
pub use btcore;
pub use btstack;
pub use hci;
pub use l2cap;
pub use l2fuzz;
pub use sniffer;
